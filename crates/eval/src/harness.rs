//! Experiment harness: corpus preparation, method construction, and
//! parallel routing evaluation.

// dbc-lint: allow(no-wallclock-determinism): build-time measurement is
// part of the report (Table 5 "Build"); it never feeds routed results.
use std::time::Instant;

use dbcopilot_core::{DbcRouter, SerializationMode, TrainExample};
use dbcopilot_graph::SchemaGraph;
use dbcopilot_retrieval::{
    build_dtr, build_sxfmr, tune_bm25, Bm25Index, Bm25Params, Crush, SchemaRouter, TargetSet,
};
use dbcopilot_synth::{
    build_bird_like, build_fiben_like, build_spider_like, questioner_pairs, Corpus, Questioner,
    QuestionerConfig,
};

use crate::metrics::RoutingMetrics;
use crate::scale::Scale;

/// Which benchmark corpus.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorpusKind {
    Spider,
    Bird,
    Fiben,
}

impl CorpusKind {
    pub const ALL: &'static [CorpusKind] =
        &[CorpusKind::Spider, CorpusKind::Bird, CorpusKind::Fiben];

    pub fn name(&self) -> &'static str {
        match self {
            CorpusKind::Spider => "Spider",
            CorpusKind::Bird => "Bird",
            CorpusKind::Fiben => "Fiben",
        }
    }
}

/// A fully prepared benchmark: corpus, graph, retrieval targets, questioner
/// and shared synthetic training data.
pub struct Prepared {
    pub kind: CorpusKind,
    pub corpus: Corpus,
    pub graph: SchemaGraph,
    pub targets: TargetSet,
    pub questioner: Questioner,
    /// Synthetic (pseudo-question, schema) pairs (Figure 2) shared by the
    /// router and the fine-tuned baselines.
    pub synth_examples: Vec<TrainExample>,
}

/// Build one benchmark end to end.
pub fn prepare(kind: CorpusKind, scale: &Scale) -> Prepared {
    let corpus = match kind {
        CorpusKind::Spider => build_spider_like(&scale.spider, scale.seed),
        CorpusKind::Bird => build_bird_like(&scale.bird, scale.seed),
        CorpusKind::Fiben => build_fiben_like(scale.fiben_test, scale.fiben_areas, scale.seed),
    };
    let mut graph = SchemaGraph::build(&corpus.collection);
    dbcopilot_graph::augment_graph_with_joinable(
        &mut graph,
        &corpus.store,
        dbcopilot_graph::joinable::DEFAULT_JACCARD_THRESHOLD,
    );
    let targets = TargetSet::from_collection(&corpus.collection);

    // The paper trains one questioner on the Spider+Bird training splits;
    // Fiben has no training questions, so its questioner is transferred
    // from a Spider-like corpus.
    let pairs = if corpus.train.is_empty() {
        let helper = build_spider_like(
            &dbcopilot_synth::CorpusSizes {
                num_databases: scale.spider.num_databases.min(40),
                train_n: scale.spider.train_n.min(1500),
                test_n: 1,
            },
            scale.seed.wrapping_add(777),
        );
        questioner_pairs(&helper)
    } else {
        questioner_pairs(&corpus)
    };
    let questioner = Questioner::train(&pairs, &QuestionerConfig::default());

    let synth_examples = dbcopilot_core::synthesize_training_data(
        &graph,
        &corpus.meta,
        &questioner,
        scale.synth_pairs,
        scale.seed.wrapping_add(31),
    );

    Prepared { kind, corpus, graph, targets, questioner, synth_examples }
}

/// The schema-routing methods of Tables 3–5.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MethodKind {
    Bm25,
    Sxfmr,
    CrushBm25,
    CrushSxfmr,
    Bm25Ft,
    Dtr,
    DbCopilot,
}

impl MethodKind {
    pub const ALL: &'static [MethodKind] = &[
        MethodKind::Bm25,
        MethodKind::Sxfmr,
        MethodKind::CrushBm25,
        MethodKind::CrushSxfmr,
        MethodKind::Bm25Ft,
        MethodKind::Dtr,
        MethodKind::DbCopilot,
    ];

    pub fn label(&self) -> &'static str {
        match self {
            MethodKind::Bm25 => "BM25",
            MethodKind::Sxfmr => "SXFMR",
            MethodKind::CrushBm25 => "CRUSH_BM25",
            MethodKind::CrushSxfmr => "CRUSH_SXFMR",
            MethodKind::Bm25Ft => "BM25 (ft)",
            MethodKind::Dtr => "DTR",
            MethodKind::DbCopilot => "DBCopilot",
        }
    }
}

/// Construction report for Table 5.
pub struct BuildReport {
    pub build_secs: f64,
    /// On-disk index size in bytes. Every method reports a *binary*
    /// encoding: BM25 counts term/posting bytes, the dense retrievers
    /// their `DBC1`-serialized encoder plus raw document matrix, and
    /// DBCopilot its full `DBC1` bundle (weights + vocab + graph +
    /// config) — so the column compares like with like.
    pub disk_bytes: usize,
}

/// Synthetic training pairs in the `(question, gold tables)` format the
/// baseline tuners consume.
pub fn baseline_train_pairs(prepared: &Prepared) -> Vec<(String, Vec<(String, String)>)> {
    prepared
        .synth_examples
        .iter()
        .map(|ex| {
            (
                ex.question.clone(),
                ex.schema.tables.iter().map(|t| (ex.schema.database.clone(), t.clone())).collect(),
            )
        })
        .collect()
}

/// Build one routing method (trains where needed). Returns the router and
/// its build report.
pub fn build_method(
    kind: MethodKind,
    prepared: &Prepared,
    scale: &Scale,
) -> (Box<dyn SchemaRouter + Send + Sync>, BuildReport) {
    // dbc-lint: allow(no-wallclock-determinism): the build-seconds column
    // of the report is the deliverable; results are unaffected.
    let start = Instant::now();
    let (router, disk): (Box<dyn SchemaRouter + Send + Sync>, usize) = match kind {
        MethodKind::Bm25 => {
            let idx = Bm25Index::build(prepared.targets.clone(), Bm25Params::default());
            let disk = idx.size_bytes();
            (Box::new(idx), disk)
        }
        MethodKind::Bm25Ft => {
            let train = baseline_train_pairs(prepared);
            // tuning on a sample keeps the grid search fast
            let sample: Vec<_> = train.into_iter().take(400).collect();
            let params = tune_bm25(&prepared.targets, &sample, 15);
            let idx = Bm25Index::build_labeled(prepared.targets.clone(), params, "BM25 (ft)");
            let disk = idx.size_bytes();
            (Box::new(idx), disk)
        }
        MethodKind::Sxfmr => {
            let r = build_sxfmr(prepared.targets.clone(), scale.encoder.clone());
            let disk = r.size_bytes();
            (Box::new(r), disk)
        }
        MethodKind::Dtr => {
            let train = baseline_train_pairs(prepared);
            let r = build_dtr(prepared.targets.clone(), &train, scale.encoder.clone());
            let disk = r.size_bytes();
            (Box::new(r), disk)
        }
        MethodKind::CrushBm25 => {
            let idx = Bm25Index::build(prepared.targets.clone(), Bm25Params::default());
            let disk = idx.size_bytes();
            let c = Crush::new(idx, prepared.graph.clone(), "CRUSH_BM25");
            (Box::new(c), disk)
        }
        MethodKind::CrushSxfmr => {
            let r = build_sxfmr(prepared.targets.clone(), scale.encoder.clone());
            let disk = r.size_bytes();
            let c = Crush::new(r, prepared.graph.clone(), "CRUSH_SXFMR");
            (Box::new(c), disk)
        }
        MethodKind::DbCopilot => {
            let (router, _) = DbcRouter::fit(
                prepared.graph.clone(),
                &prepared.synth_examples,
                scale.router.clone(),
                SerializationMode::Dfs,
            );
            // exact size of the saveable DBC1 bundle, not an estimate
            let disk = router.size_bytes();
            (Box::new(router), disk)
        }
    };
    (router, BuildReport { build_secs: start.elapsed().as_secs_f64(), disk_bytes: disk })
}

/// Questions per evaluation work unit. Fixed (never derived from the thread
/// count) so partial-metric merge order — and thus any float accumulation —
/// is identical on every machine.
const EVAL_CHUNK: usize = 32;

/// Evaluate a router over instances, data-parallel over fixed-size question
/// chunks on the persistent worker pool in `dbcopilot-runtime`; partial
/// metrics merge in chunk order.
pub fn eval_routing(
    router: &(dyn SchemaRouter + Send + Sync),
    instances: &[dbcopilot_synth::Instance],
    top_tables: usize,
) -> RoutingMetrics {
    let partials = dbcopilot_runtime::pooled_map_chunks(instances, EVAL_CHUNK, |_, part| {
        let mut m = RoutingMetrics::default();
        for inst in part {
            let result = router.route(&inst.question, top_tables);
            m.add(&result, &inst.schema);
        }
        m
    });
    let mut total = RoutingMetrics::default();
    for p in &partials {
        total.merge(p);
    }
    total.finalize()
}

/// Evaluate through the serving layer: all questions go through
/// [`RouterService::route_many`] (cache + micro-batch + pool dispatch), so
/// the measured quality is exactly what a served deployment returns. The
/// result is deterministic and — because a served route is the same
/// computation as a direct route — identical to [`eval_routing`] with the
/// service's `top_tables`.
///
/// [`RouterService::route_many`]: dbcopilot_serve::RouterService::route_many
pub fn eval_routing_served<R: SchemaRouter + Send + Sync + 'static>(
    service: &dbcopilot_serve::RouterService<R>,
    instances: &[dbcopilot_synth::Instance],
) -> RoutingMetrics {
    let questions: Vec<String> = instances.iter().map(|i| i.question.clone()).collect();
    let results = service.route_many(&questions);
    let mut total = RoutingMetrics::default();
    for (result, inst) in results.iter().zip(instances) {
        total.add(result, &inst.schema);
    }
    total.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Scale {
        let mut s = Scale::quick();
        s.spider = dbcopilot_synth::CorpusSizes { num_databases: 8, train_n: 150, test_n: 30 };
        s.synth_pairs = 200;
        s
    }

    #[test]
    fn prepare_spider_quick() {
        let s = quick();
        let p = prepare(CorpusKind::Spider, &s);
        assert_eq!(p.corpus.collection.num_databases(), 8);
        assert_eq!(p.synth_examples.len(), 200);
        assert!(!p.targets.is_empty());
    }

    #[test]
    fn bm25_method_builds_and_evaluates() {
        let s = quick();
        let p = prepare(CorpusKind::Spider, &s);
        let (router, report) = build_method(MethodKind::Bm25, &p, &s);
        assert!(report.disk_bytes > 0);
        let m = eval_routing(router.as_ref(), &p.corpus.test, 100);
        assert_eq!(m.queries, p.corpus.test.len());
        assert!(m.db_r5 > 0.0, "BM25 should find some databases: {m:?}");
    }

    #[test]
    fn served_eval_matches_direct_eval() {
        use dbcopilot_serve::{RouterService, ServiceConfig};
        let s = quick();
        let p = prepare(CorpusKind::Spider, &s);
        let (router, _) = build_method(MethodKind::Bm25, &p, &s);
        let direct = eval_routing(router.as_ref(), &p.corpus.test, 100);
        let cfg = ServiceConfig::new().top_tables(100);
        let service = RouterService::from_router(router, cfg);
        let served = eval_routing_served(&service, &p.corpus.test);
        assert_eq!(direct, served, "serving must not change routing quality");
        // the duplicate-free test set still exercises the cache via
        // normalization only; a second pass is all hits
        let again = eval_routing_served(&service, &p.corpus.test);
        assert_eq!(direct, again);
        let stats = service.stats();
        assert!(stats.cache_hits >= p.corpus.test.len() as u64, "{stats:?}");
    }

    #[test]
    fn dbcopilot_disk_column_matches_saved_bytes() {
        let mut s = quick();
        s.router.epochs = 1;
        let p = prepare(CorpusKind::Spider, &s);
        let (_, report) = build_method(MethodKind::DbCopilot, &p, &s);
        // rebuild the same (deterministic) router and compare against the
        // bytes save_router actually writes
        let (router, _) = DbcRouter::fit(
            p.graph.clone(),
            &p.synth_examples,
            s.router.clone(),
            SerializationMode::Dfs,
        );
        let mut buf = Vec::new();
        dbcopilot_core::save_router(&router, &mut buf).unwrap();
        assert_eq!(report.disk_bytes, buf.len(), "Table 5 disk must equal saved bundle size");
    }

    #[test]
    fn synthetic_pairs_cover_test_databases() {
        // the crux of the paper: synthesis covers ALL databases, including
        // those only seen at test time
        let s = quick();
        let p = prepare(CorpusKind::Spider, &s);
        let synth_dbs: std::collections::HashSet<&str> =
            p.synth_examples.iter().map(|e| e.schema.database.as_str()).collect();
        for db in &p.corpus.test_databases {
            assert!(synth_dbs.contains(db.as_str()), "test db {db} not covered");
        }
    }
}
