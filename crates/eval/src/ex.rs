//! End-to-end schema-agnostic NL2SQL evaluation: execution accuracy and
//! cost (Table 6).

use dbcopilot_core::DbcRouter;
use dbcopilot_graph::QuerySchema;
use dbcopilot_nl2sql::{
    basic_prompt, cot_selection_prompt, estimate_tokens, multiple_prompt, CopilotLM, CostModel,
    PromptSchema,
};
use dbcopilot_retrieval::SchemaRouter;
use dbcopilot_sqlengine::{compare_to_gold_prepared, execute_prepared, parse_select, PreparedDb};
use dbcopilot_synth::{Corpus, Instance};
use std::collections::HashMap;

/// Where candidate schemata come from.
pub enum SchemaSource<'a> {
    /// Gold tables restricted to the gold SQL's columns.
    OracleGoldTc,
    /// Gold tables, all columns.
    OracleGoldT,
    /// The whole gold database.
    OracleGoldDb,
    /// Five database schemata including the gold one.
    OracleFiveDb,
    /// A retrieval baseline (top database + its retrieved tables).
    Method(&'a (dyn SchemaRouter + Send + Sync)),
    /// The DBCopilot router (merged beam candidates).
    Copilot(&'a DbcRouter),
}

impl SchemaSource<'_> {
    /// Candidate schemata for one instance, best first.
    pub fn candidates(&self, corpus: &Corpus, inst: &Instance, k: usize) -> Vec<QuerySchema> {
        match self {
            SchemaSource::OracleGoldTc | SchemaSource::OracleGoldT => vec![inst.schema.clone()],
            SchemaSource::OracleGoldDb => vec![whole_db(corpus, &inst.schema.database)],
            SchemaSource::OracleFiveDb => {
                let mut out = vec![whole_db(corpus, &inst.schema.database)];
                for name in corpus.collection.databases.keys() {
                    if out.len() >= 5 {
                        break;
                    }
                    if !name.eq_ignore_ascii_case(&inst.schema.database) {
                        out.push(whole_db(corpus, name));
                    }
                }
                out
            }
            SchemaSource::Method(router) => {
                router.route(&inst.question, 100).candidate_schemata(k, 4)
            }
            SchemaSource::Copilot(router) => router
                .route_schemata(&inst.question)
                .into_iter()
                .take(k)
                .map(|d| d.schema)
                .collect(),
        }
    }

    /// Column filter for the Gold T&C oracle.
    fn column_filter(&self, inst: &Instance) -> Option<Vec<String>> {
        match self {
            SchemaSource::OracleGoldTc => {
                let cols = parse_select(&inst.sql).ok()?.referenced_columns();
                Some(cols)
            }
            _ => None,
        }
    }
}

fn whole_db(corpus: &Corpus, name: &str) -> QuerySchema {
    let tables = corpus
        .collection
        .database(name)
        .map(|db| db.tables.iter().map(|t| t.name.clone()).collect())
        .unwrap_or_default();
    QuerySchema::new(name.to_string(), tables)
}

/// Prompting strategy for Table 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Top-1 candidate, basic prompt.
    Best,
    /// Top-k candidates concatenated.
    Multiple(usize),
    /// Two-turn chain of thought over top-k candidates.
    Cot(usize),
    /// Human selects the best of the top-k candidates, then basic prompt.
    HumanInTheLoop(usize),
}

/// Aggregated EX report.
#[derive(Debug, Clone, Default)]
pub struct ExReport {
    /// Execution accuracy in percent.
    pub ex: f64,
    /// Total LLM cost in dollars.
    pub cost: f64,
    pub queries: usize,
    /// Gold queries that failed to execute (corpus defects; count as miss).
    pub gold_errors: usize,
}

/// Evaluate execution accuracy of a schema source + prompt strategy.
pub fn eval_ex(
    corpus: &Corpus,
    instances: &[Instance],
    source: &SchemaSource<'_>,
    strategy: Strategy,
    llm: &CopilotLM,
) -> ExReport {
    let pricing = CostModel::gpt35_turbo();
    let mut report = ExReport { queries: instances.len(), ..Default::default() };
    let mut matches = 0usize;
    // Databases interned once and reused across the instance loop — the
    // same database serves many instances, and each instance executes at
    // least two queries (gold + prediction) against it.
    let mut prepared: HashMap<String, PreparedDb> = HashMap::new();
    for inst in instances {
        let k = match strategy {
            Strategy::Best => 1,
            Strategy::Multiple(k) | Strategy::Cot(k) | Strategy::HumanInTheLoop(k) => k,
        };
        let mut cands = source.candidates(corpus, inst, k);
        if cands.is_empty() {
            continue; // no prompt at all → automatic miss, no cost
        }
        // Resolve against the collection (and filter columns for Gold T&C).
        let filter = source.column_filter(inst);
        let resolve = |s: &QuerySchema| {
            let mut p = PromptSchema::resolve(&corpus.collection, s);
            if let Some(f) = &filter {
                p = p.clone().with_columns_filtered(f);
            }
            p
        };

        let (prompt, out) = match strategy {
            Strategy::Best => {
                let p = basic_prompt(&resolve(&cands[0]), &inst.question);
                let out = llm.generate_sql(&p, &inst.question);
                (p, out)
            }
            Strategy::Multiple(_) => {
                let schemas: Vec<PromptSchema> = cands.iter().map(&resolve).collect();
                let p = multiple_prompt(&schemas, &inst.question);
                let out = llm.generate_sql(&p, &inst.question);
                (p, out)
            }
            Strategy::Cot(_) => {
                let schemas: Vec<PromptSchema> = cands.iter().map(&resolve).collect();
                let turn1 = cot_selection_prompt(&schemas, &inst.question);
                let (pick, sel_tokens) = llm.select_schema(&schemas, &inst.question);
                report.cost += pricing.query_cost(estimate_tokens(&turn1.text), sel_tokens);
                let chosen = schemas.get(pick).cloned().unwrap_or_else(|| schemas[0].clone());
                let p = basic_prompt(&chosen, &inst.question);
                let out = llm.generate_sql(&p, &inst.question);
                (p, out)
            }
            Strategy::HumanInTheLoop(_) => {
                // the human picks the covering candidate, else best overlap
                cands.sort_by_key(|c| {
                    let covers = c.covers(&inst.schema);
                    let overlap = inst
                        .schema
                        .tables
                        .iter()
                        .filter(|t| {
                            c.database.eq_ignore_ascii_case(&inst.schema.database)
                                && c.tables.iter().any(|x| x.eq_ignore_ascii_case(t))
                        })
                        .count();
                    std::cmp::Reverse((covers as usize, overlap))
                });
                let p = basic_prompt(&resolve(&cands[0]), &inst.question);
                let out = llm.generate_sql(&p, &inst.question);
                (p, out)
            }
        };
        report.cost += pricing.query_cost(estimate_tokens(&prompt.text), out.output_tokens);

        let Some(db) = corpus.store.database(&inst.schema.database) else {
            report.gold_errors += 1;
            continue;
        };
        let pdb =
            prepared.entry(inst.schema.database.clone()).or_insert_with(|| PreparedDb::prepare(db));
        let gold = match execute_prepared(pdb, &inst.sql) {
            Ok(rs) => rs,
            Err(_) => {
                report.gold_errors += 1;
                continue;
            }
        };
        if let Some(sql) = &out.sql {
            if compare_to_gold_prepared(pdb, &gold, sql).is_match() {
                matches += 1;
            }
        }
    }
    report.ex = matches as f64 / report.queries.max(1) as f64 * 100.0;
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{prepare, CorpusKind};
    use crate::scale::Scale;
    use dbcopilot_nl2sql::LlmConfig;

    fn quick_prepared() -> (crate::harness::Prepared, CopilotLM) {
        let mut s = Scale::quick();
        s.spider = dbcopilot_synth::CorpusSizes { num_databases: 10, train_n: 200, test_n: 120 };
        let p = prepare(CorpusKind::Spider, &s);
        let llm = CopilotLM::new(
            LlmConfig::new()
                .seed(3)
                .distraction_per_table(0.01)
                .synonym_resolution(0.95)
                .base_error(0.05)
                .malformed_sql(0.02),
        );
        (p, llm)
    }

    #[test]
    fn oracle_ordering_holds() {
        let (p, llm) = quick_prepared();
        let tc =
            eval_ex(&p.corpus, &p.corpus.test, &SchemaSource::OracleGoldTc, Strategy::Best, &llm);
        let t =
            eval_ex(&p.corpus, &p.corpus.test, &SchemaSource::OracleGoldT, Strategy::Best, &llm);
        let db =
            eval_ex(&p.corpus, &p.corpus.test, &SchemaSource::OracleGoldDb, Strategy::Best, &llm);
        let five = eval_ex(
            &p.corpus,
            &p.corpus.test,
            &SchemaSource::OracleFiveDb,
            Strategy::Multiple(5),
            &llm,
        );
        assert_eq!(tc.gold_errors, 0, "gold SQL must execute");
        // small-sample tolerance: orderings are asserted with slack here and
        // exactly reproduced at full scale (EXPERIMENTS.md)
        assert!(tc.ex + 3.0 >= t.ex, "gold T&C {:.1} vs gold T {:.1}", tc.ex, t.ex);
        assert!(t.ex >= db.ex - 5.0, "gold T {:.1} vs gold DB {:.1}", t.ex, db.ex);
        assert!(db.ex + 8.0 >= five.ex, "gold DB {:.1} vs 5 DB {:.1}", db.ex, five.ex);
        assert!(tc.ex > 50.0, "gold T&C should be strong, got {:.1}", tc.ex);
        // cost grows with prompt width
        assert!(five.cost > tc.cost);
    }

    #[test]
    fn human_in_the_loop_beats_best_for_weak_sources() {
        let (p, llm) = quick_prepared();
        let s = Scale::quick();
        let (bm25, _) = crate::harness::build_method(crate::harness::MethodKind::Bm25, &p, &s);
        let best = eval_ex(
            &p.corpus,
            &p.corpus.test,
            &SchemaSource::Method(bm25.as_ref()),
            Strategy::Best,
            &llm,
        );
        let human = eval_ex(
            &p.corpus,
            &p.corpus.test,
            &SchemaSource::Method(bm25.as_ref()),
            Strategy::HumanInTheLoop(5),
            &llm,
        );
        assert!(
            human.ex + 1e-9 >= best.ex,
            "human {:.1} should be ≥ best {:.1}",
            human.ex,
            best.ex
        );
    }
}
