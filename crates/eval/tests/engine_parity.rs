//! Workload-scale engine parity: every gold query the synthetic corpus
//! generator emits must produce identical results (or identical errors)
//! under the interpreted and compiled execution strategies — against both
//! ad-hoc and prepared databases. Identical results imply identical EX and
//! answered% for any evaluation built on top, so this pins the end-to-end
//! numbers across the engine swap.

use dbcopilot_sqlengine::{execute_prepared, execute_with, ExecStrategy, PreparedStore};
use dbcopilot_synth::{build_spider_like, CorpusSizes};

#[test]
fn gold_workload_is_strategy_invariant() {
    let corpus =
        build_spider_like(&CorpusSizes { num_databases: 12, train_n: 300, test_n: 150 }, 29);
    let prepared = PreparedStore::new(corpus.store.clone());
    let mut executed = 0usize;
    for inst in corpus.train.iter().chain(corpus.test.iter()) {
        let Some(db) = corpus.store.database(&inst.schema.database) else {
            continue;
        };
        let interp = execute_with(db, &inst.sql, ExecStrategy::Interpreted);
        let compiled = execute_with(db, &inst.sql, ExecStrategy::Compiled);
        match (&interp, &compiled) {
            (Ok(a), Ok(b)) => {
                assert_eq!(
                    format!("{a:?}"),
                    format!("{b:?}"),
                    "results diverge on gold SQL: {}",
                    inst.sql
                );
                executed += 1;
            }
            (Err(a), Err(b)) => {
                assert_eq!(a.to_string(), b.to_string(), "errors diverge on: {}", inst.sql);
            }
            _ => panic!(
                "strategy disagreement on {}\n  interpreted: {interp:?}\n  compiled: {compiled:?}",
                inst.sql
            ),
        }
        let pdb = prepared.prepared(&inst.schema.database).expect("database is in the store");
        let via_prepared = execute_prepared(pdb, &inst.sql);
        match (&compiled, &via_prepared) {
            (Ok(a), Ok(b)) => {
                assert_eq!(format!("{a:?}"), format!("{b:?}"), "prepared diverges on: {}", inst.sql)
            }
            (Err(a), Err(b)) => assert_eq!(a.to_string(), b.to_string()),
            _ => panic!("prepared disagreement on {}", inst.sql),
        }
    }
    assert!(executed > 200, "workload should mostly execute, got {executed}");
}
