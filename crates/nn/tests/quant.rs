//! Property tests for the i8 quantization module: the analytic error bounds
//! the kernels advertise must hold for arbitrary finite matrices.

use proptest::prelude::*;

use dbcopilot_nn::quant::{dot_i8, quantize_row_into, QuantizedMatrix, QuantizedVec};
use dbcopilot_nn::Tensor;

/// Derive a finite f32 in roughly `[-mag, mag]` from the deterministic
/// sampler state, mixing wide magnitude variation (down to subnormals) so
/// the scale floor and rounding paths all get exercised.
fn sample_f32(state: &mut u64, mag_exp: i32) -> f32 {
    let bits = proptest::next_state(state);
    let mantissa = ((bits & 0xFFFF) as f32 / 65536.0) * 2.0 - 1.0; // [-1, 1)
    let exp = ((bits >> 16) % (2 * mag_exp as u64 + 1)) as i32 - mag_exp;
    let v = mantissa * 2.0f32.powi(exp);
    if v.is_finite() {
        v
    } else {
        0.0
    }
}

fn sample_matrix(state: &mut u64, rows: usize, cols: usize, mag_exp: i32) -> Tensor {
    let data = (0..rows * cols).map(|_| sample_f32(state, mag_exp)).collect();
    Tensor::from_vec(rows, cols, data)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Quantize→dequantize error is bounded by scale/2 per element, for
    /// matrices spanning ~60 binary orders of magnitude (including rows
    /// where the MIN_POSITIVE scale floor engages).
    #[test]
    fn dequantize_error_bounded_by_half_scale(seed in 0u64..10_000) {
        let mut state = seed;
        let rows = 1 + (proptest::next_state(&mut state) % 8) as usize;
        let cols = 1 + (proptest::next_state(&mut state) % 24) as usize;
        let t = sample_matrix(&mut state, rows, cols, 30);
        let q = QuantizedMatrix::from_tensor(&t);
        let d = q.dequantize();
        for r in 0..rows {
            let s = q.scale(r);
            // Tiny relative slack for the f32 rounding in scale and s*q;
            // the analytic bound itself is scale/2.
            let bound = s * 0.5 * (1.0 + 1e-4) + f32::MIN_POSITIVE;
            for (c, (&orig, &deq)) in t.row(r).iter().zip(d.row(r)).enumerate() {
                prop_assert!(
                    (orig - deq).abs() <= bound,
                    "seed {}: ({},{}) orig {} deq {} scale {}",
                    seed, r, c, orig, deq, s
                );
            }
        }
    }

    /// i8 matvec vs f32 matvec: the error is within the analytic bound
    /// sx/2·Σ|w_row| + sw/2·Σ|x| + n·sx·sw/4 per output element.
    #[test]
    fn matvec_error_within_analytic_bound(seed in 0u64..10_000) {
        let mut state = seed;
        let out_dim = 1 + (proptest::next_state(&mut state) % 12) as usize;
        let in_dim = 1 + (proptest::next_state(&mut state) % 48) as usize;
        // Moderate magnitudes: the bound is about quantization error, not
        // f32 summation error, so keep the exact reference well-conditioned.
        let w = sample_matrix(&mut state, in_dim, out_dim, 6);
        let xs = sample_matrix(&mut state, 1, in_dim, 6);
        let x = xs.as_slice();

        let exact = Tensor::from_row(x.to_vec()).matmul(&w);
        let qw = QuantizedMatrix::from_tensor_transposed(&w);
        let qx = QuantizedVec::quantize(x);
        let mut got = Vec::new();
        qw.matvec_into(&qx, &mut got);

        let sum_abs_x: f32 = x.iter().map(|v| v.abs()).sum();
        for (j, &got_j) in got.iter().enumerate() {
            let sw = qw.scale(j);
            let sum_abs_w: f32 = (0..in_dim).map(|i| w.get(i, j).abs()).sum();
            let bound = qx.scale * 0.5 * sum_abs_w
                + sw * 0.5 * sum_abs_x
                + in_dim as f32 * qx.scale * sw * 0.25;
            // 5% slack + absolute epsilon for f32 rounding in the
            // reference reduction itself.
            let bound = bound * 1.05 + 1e-6;
            let err = (exact.as_slice()[j] - got_j).abs();
            prop_assert!(
                err <= bound,
                "seed {}: col {} exact {} quant {} err {} > bound {}",
                seed, j, exact.as_slice()[j], got_j, err, bound
            );
        }
    }

    /// All-zero and single-row edge cases never panic, and zero maps to
    /// exactly zero.
    #[test]
    fn zero_and_single_row_edges_never_panic(seed in 0u64..10_000) {
        let mut state = seed;
        let cols = 1 + (proptest::next_state(&mut state) % 64) as usize;

        // All-zero matrix: zero scales, zero codes, exact round-trip.
        let z = Tensor::zeros(3, cols);
        let qz = QuantizedMatrix::from_tensor(&z);
        prop_assert!(qz.scales().iter().all(|&s| s == 0.0));
        prop_assert!(qz.dequantize().approx_eq(&z, 0.0));
        let mut out = Vec::new();
        qz.matvec_into(&QuantizedVec::quantize(&vec![1.0; cols]), &mut out);
        prop_assert!(out.iter().all(|&v| v == 0.0));

        // Single-row matrix round-trips within bound; quantizing its own
        // dequantization is stable (no panic, still bounded).
        let single = sample_matrix(&mut state, 1, cols, 30);
        let qs = QuantizedMatrix::from_tensor(&single);
        let d = qs.dequantize();
        let bound = qs.scale(0) * 0.5 * (1.0 + 1e-4) + f32::MIN_POSITIVE;
        for (&a, &b) in single.row(0).iter().zip(d.row(0)) {
            prop_assert!((a - b).abs() <= bound);
        }
        let _ = QuantizedMatrix::from_tensor(&d);

        // Empty-width vectors: dot of nothing is 0.
        let mut q = QuantizedVec::new();
        q.quantize_into(&[]);
        prop_assert_eq!(q.len(), 0);
        prop_assert_eq!(dot_i8(&q.data, &[]), 0);
    }

    /// `quantize_row_into` codes stay in [-127, 127] (the symmetric range;
    /// -128 is never produced) and the scale is 0 iff the row is all-zero.
    #[test]
    fn codes_symmetric_and_scale_zero_iff_zero_row(seed in 0u64..10_000) {
        let mut state = seed;
        let cols = 1 + (proptest::next_state(&mut state) % 32) as usize;
        let row = sample_matrix(&mut state, 1, cols, 35);
        let mut codes = vec![0i8; cols];
        let scale = quantize_row_into(row.row(0), &mut codes);
        prop_assert!(codes.iter().all(|&c| (-127..=127).contains(&c)));
        let all_zero = row.row(0).iter().all(|&v| v == 0.0);
        prop_assert_eq!(scale == 0.0, all_zero, "scale {} for row {:?}", scale, row.row(0));
    }
}
