//! Property tests for the `DBC1` binary codec: every `f32` bit pattern —
//! normal, subnormal, zero of either sign, infinite, and NaN with any
//! payload — must survive a save→load round trip bit-exactly, and every
//! corruption of a valid file must fail with a typed error, not a panic
//! (and not a `debug_assert!` that vanishes in release builds).

use proptest::prelude::*;

use dbcopilot_nn::codec::{decode_store, encode_store, encoded_store_len};
use dbcopilot_nn::serialize::{
    load_store_slice, save_store_as, serialized_size, Format, PersistError,
};
use dbcopilot_nn::{ParamStore, Tensor};

/// Derive a deterministic stream of arbitrary `f32` bit patterns from one
/// sampled seed (SplitMix64, the same generator the vendored proptest
/// uses), seasoned with the interesting fixed points.
fn bits_stream(seed: u64, n: usize) -> Vec<f32> {
    const SPECIALS: &[u32] = &[
        0x0000_0000, // +0.0
        0x8000_0000, // -0.0
        0x7f80_0000, // +inf
        0xff80_0000, // -inf
        0x7fc0_0000, // quiet NaN
        0x7fa0_0001, // signalling-style NaN payload
        0xffc1_2345, // negative NaN with payload
        0x0000_0001, // smallest subnormal
        0x007f_ffff, // largest subnormal
        0x7f7f_ffff, // f32::MAX
    ];
    let mut state = seed;
    (0..n)
        .map(|i| {
            // Even slots cycle the special fixed points so every stream
            // holds NaNs/infs/subnormals; odd slots are seeded arbitrary
            // patterns, so the stream varies per case at any length.
            if i % 2 == 0 {
                f32::from_bits(SPECIALS[(i / 2) % SPECIALS.len()])
            } else {
                f32::from_bits(proptest::next_state(&mut state) as u32)
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary bit patterns (including NaN payloads and infinities)
    /// survive a binary save→load round trip exactly.
    #[test]
    fn arbitrary_bits_roundtrip_exactly(seed in 0u64..=u64::MAX) {
        let values = bits_stream(seed, 64);
        let mut store = ParamStore::new();
        store.add("a", Tensor::from_vec(4, 8, values[..32].to_vec()));
        store.add("b.weight", Tensor::from_vec(8, 4, values[32..].to_vec()));

        let bytes = encode_store(&store);
        prop_assert_eq!(bytes.len(), encoded_store_len(&store));
        let loaded = decode_store(&bytes).map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert_eq!(loaded.len(), store.len());
        for ((an, av), (bn, bv)) in store.iter_values().zip(loaded.iter_values()) {
            prop_assert_eq!(an, bn);
            prop_assert_eq!(av.shape(), bv.shape());
            for (x, y) in av.as_slice().iter().zip(bv.as_slice()) {
                prop_assert_eq!(x.to_bits(), y.to_bits(), "bits drifted in {}", an);
            }
        }
    }

    /// Single-byte corruption anywhere in a valid file either fails with a
    /// typed error or — if it lands inside weight data, where any bits are
    /// legal — still decodes without panicking. It must never crash.
    #[test]
    fn single_byte_corruption_never_panics(seed in 0u64..=u64::MAX) {
        let values = bits_stream(seed, 8);
        let mut store = ParamStore::new();
        store.add("w", Tensor::from_vec(2, 4, values));
        let bytes = encode_store(&store);
        let pos = (proptest::next_state(&mut { seed }) as usize) % bytes.len();
        let mut bad = bytes.clone();
        bad[pos] ^= 0xff;
        // Err is fine; Ok is fine (weight-byte flips are legal data); a
        // panic would abort the test process.
        let _ = load_store_slice(&bad);
    }

    /// Every strict prefix of a valid file is rejected with an error.
    #[test]
    fn truncation_always_errors(seed in 0u64..=u64::MAX) {
        let values = bits_stream(seed, 8);
        let mut store = ParamStore::new();
        store.add("w", Tensor::from_vec(1, 8, values));
        let bytes = encode_store(&store);
        let cut = (proptest::next_state(&mut { seed }) as usize) % bytes.len();
        prop_assert!(decode_store(&bytes[..cut]).is_err(), "prefix of {} bytes decoded", cut);
    }
}

#[test]
fn json_and_binary_sizes_agree_with_reality() {
    let mut store = ParamStore::new();
    store.add("w", Tensor::from_vec(3, 5, (0..15).map(|i| i as f32 / 7.0).collect()));
    for format in [Format::Binary, Format::Json] {
        let mut buf = Vec::new();
        save_store_as(&store, &mut buf, format).unwrap();
        assert_eq!(serialized_size(&store, format).unwrap(), buf.len());
        let loaded = load_store_slice(&buf).unwrap();
        assert_eq!(loaded.len(), 1);
    }
}

#[test]
fn json_nan_is_a_typed_error_not_silent_null() {
    let mut store = ParamStore::new();
    store.add("w", Tensor::from_row(vec![0.0, f32::NAN, 1.0]));
    match serialized_size(&store, Format::Json) {
        Err(PersistError::NonFinite { param }) => assert_eq!(param, "w[1]"),
        other => panic!("expected NonFinite, got {other:?}"),
    }
}
