//! Parameter storage and optimizers.
//!
//! [`ParamStore`] owns all trainable tensors of a model plus their accumulated
//! gradients and optimizer state. [`AdamW`] implements decoupled weight decay
//! (Loshchilov & Hutter, 2019) — the optimizer used for the paper's schema
//! router — with a *lazy* path for sparse (embedding) gradients: rows that
//! received no gradient in a step are not touched, which keeps training cost
//! proportional to the tokens actually used rather than the vocabulary size.

use std::collections::{BTreeMap, HashMap};

use serde::{Deserialize, Serialize};

use crate::tape::Grad;
use crate::tensor::Tensor;

/// Identifier of a parameter inside a [`ParamStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ParamId(pub(crate) usize);

/// One worker's gradients, drained from its tape in ascending [`ParamId`]
/// order (see `Tape::take_grads`). Shards from a data-parallel step are
/// combined with [`ParamStore::merge_grads`].
pub type GradShard = Vec<(ParamId, Grad)>;

#[derive(Serialize, Deserialize)]
struct Param {
    name: String,
    value: Tensor,
    #[serde(skip)]
    grad: GradAccum,
    /// First Adam moment.
    #[serde(skip)]
    m: Option<Tensor>,
    /// Second Adam moment.
    #[serde(skip)]
    v: Option<Tensor>,
}

/// Accumulated gradient for one parameter: dense, sparse rows, or absent.
///
/// The sparse accumulator is a `BTreeMap` so every iteration over it (norm,
/// clipping, optimizer updates) runs in row order — float summation order is
/// part of the training determinism contract.
#[derive(Default)]
enum GradAccum {
    #[default]
    None,
    Dense(Tensor),
    Sparse(BTreeMap<usize, Vec<f32>>),
}

/// Owns model parameters, gradients and optimizer state.
#[derive(Default, Serialize, Deserialize)]
pub struct ParamStore {
    params: Vec<Param>,
    by_name: HashMap<String, usize>,
}

impl std::fmt::Debug for ParamStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut d = f.debug_struct("ParamStore");
        for p in &self.params {
            d.field(&p.name, &p.value.shape());
        }
        d.finish()
    }
}

impl ParamStore {
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a parameter. Names must be unique.
    ///
    /// # Panics
    /// Panics on duplicate names.
    pub fn add(&mut self, name: impl Into<String>, value: Tensor) -> ParamId {
        let name = name.into();
        assert!(!self.by_name.contains_key(&name), "duplicate parameter name {name:?}");
        let id = self.params.len();
        self.by_name.insert(name.clone(), id);
        self.params.push(Param { name, value, grad: GradAccum::None, m: None, v: None });
        ParamId(id)
    }

    pub fn value(&self, id: ParamId) -> &Tensor {
        &self.params[id.0].value
    }

    pub fn value_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.params[id.0].value
    }

    /// Look up a parameter id by name.
    pub fn id_of(&self, name: &str) -> Option<ParamId> {
        self.by_name.get(name).copied().map(ParamId)
    }

    pub fn len(&self) -> usize {
        self.params.len()
    }

    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Total number of scalar parameters.
    pub fn num_scalars(&self) -> usize {
        self.params.iter().map(|p| p.value.len()).sum()
    }

    /// Fold a gradient contribution into the accumulator for `id`.
    pub fn accumulate_grad(&mut self, id: ParamId, grad: Grad) {
        let slot = &mut self.params[id.0].grad;
        match grad {
            Grad::Dense(t) => match slot {
                GradAccum::None => *slot = GradAccum::Dense(t),
                GradAccum::Dense(d) => d.add_scaled_assign(&t, 1.0),
                GradAccum::Sparse(map) => {
                    // Mixing dense into sparse: densify.
                    let mut dense = t;
                    let cols = dense.cols();
                    let buf = dense.as_mut_slice();
                    for (r, row) in std::mem::take(map) {
                        for (c, v) in row.into_iter().enumerate() {
                            buf[r * cols + c] += v;
                        }
                    }
                    *slot = GradAccum::Dense(dense);
                }
            },
            Grad::SparseRows { entries, cols, .. } => match slot {
                GradAccum::Dense(d) => {
                    let buf = d.as_mut_slice();
                    for (r, row) in entries {
                        for (c, v) in row.into_iter().enumerate() {
                            buf[r * cols + c] += v;
                        }
                    }
                }
                GradAccum::Sparse(map) => {
                    for (r, row) in entries {
                        match map.get_mut(&r) {
                            Some(acc) => {
                                for (a, v) in acc.iter_mut().zip(row) {
                                    *a += v;
                                }
                            }
                            None => {
                                map.insert(r, row);
                            }
                        }
                    }
                }
                GradAccum::None => {
                    let mut map: BTreeMap<usize, Vec<f32>> = BTreeMap::new();
                    for (r, row) in entries {
                        match map.get_mut(&r) {
                            Some(acc) => {
                                for (a, v) in acc.iter_mut().zip(row) {
                                    *a += v;
                                }
                            }
                            None => {
                                map.insert(r, row);
                            }
                        }
                    }
                    *slot = GradAccum::Sparse(map);
                }
            },
        }
    }

    /// Merge per-worker gradient shards into the accumulators, scaling every
    /// contribution by `scale` (e.g. `1/batch` for a batch-mean loss whose
    /// shards were each seeded with gradient 1).
    ///
    /// Shards are folded strictly in iteration order, and entries within a
    /// shard in their listed (ascending-`ParamId`) order, so the accumulated
    /// gradient is bit-identical no matter how many threads produced the
    /// shards — the keystone of deterministic data-parallel training.
    pub fn merge_grads(&mut self, shards: impl IntoIterator<Item = GradShard>, scale: f32) {
        for shard in shards {
            for (pid, mut g) in shard {
                if scale != 1.0 {
                    g.scale_in_place(scale);
                }
                self.accumulate_grad(pid, g);
            }
        }
    }

    /// Clear all accumulated gradients.
    pub fn zero_grads(&mut self) {
        for p in &mut self.params {
            p.grad = GradAccum::None;
        }
    }

    /// Global L2 norm of all accumulated gradients.
    pub fn grad_norm(&self) -> f32 {
        let mut sq = 0.0f32;
        for p in &self.params {
            match &p.grad {
                GradAccum::None => {}
                GradAccum::Dense(t) => sq += t.as_slice().iter().map(|v| v * v).sum::<f32>(),
                GradAccum::Sparse(map) => {
                    for row in map.values() {
                        sq += row.iter().map(|v| v * v).sum::<f32>();
                    }
                }
            }
        }
        sq.sqrt()
    }

    /// Scale all gradients so the global norm does not exceed `max_norm`.
    pub fn clip_grad_norm(&mut self, max_norm: f32) {
        let norm = self.grad_norm();
        if norm <= max_norm || norm == 0.0 {
            return;
        }
        let s = max_norm / norm;
        for p in &mut self.params {
            match &mut p.grad {
                GradAccum::None => {}
                GradAccum::Dense(t) => {
                    for v in t.as_mut_slice() {
                        *v *= s;
                    }
                }
                GradAccum::Sparse(map) => {
                    for row in map.values_mut() {
                        for v in row {
                            *v *= s;
                        }
                    }
                }
            }
        }
    }

    /// Densified gradient of a parameter (for tests / gradient checking).
    pub fn dense_grad(&self, id: ParamId) -> Option<Tensor> {
        let p = &self.params[id.0];
        match &p.grad {
            GradAccum::None => None,
            GradAccum::Dense(t) => Some(t.clone()),
            GradAccum::Sparse(map) => {
                let (rows, cols) = p.value.shape();
                let mut out = Tensor::zeros(rows, cols);
                let buf = out.as_mut_slice();
                for (&r, row) in map {
                    for (c, &v) in row.iter().enumerate() {
                        buf[r * cols + c] += v;
                    }
                }
                Some(out)
            }
        }
    }

    /// Iterate over `(name, shape)` pairs (diagnostics).
    pub fn describe(&self) -> Vec<(String, (usize, usize))> {
        self.params.iter().map(|p| (p.name.clone(), p.value.shape())).collect()
    }

    /// Iterate `(name, value)` pairs in registration ([`ParamId`]) order.
    pub fn iter_values(&self) -> impl Iterator<Item = (&str, &Tensor)> {
        self.params.iter().map(|p| (p.name.as_str(), &p.value))
    }
}

/// AdamW with decoupled weight decay and lazy sparse updates.
#[derive(Debug, Clone)]
pub struct AdamW {
    pub lr: f32,
    pub beta1: f32,
    pub beta2: f32,
    pub eps: f32,
    pub weight_decay: f32,
    /// Step counter for bias correction.
    t: u64,
}

impl AdamW {
    pub fn new(lr: f32) -> Self {
        AdamW { lr, beta1: 0.9, beta2: 0.999, eps: 1e-8, weight_decay: 0.01, t: 0 }
    }

    /// Current step count.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Apply one optimization step using the gradients accumulated in
    /// `store`, then clear them.
    pub fn step(&mut self, store: &mut ParamStore) {
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for p in &mut store.params {
            let grad = std::mem::take(&mut p.grad);
            let (rows, cols) = p.value.shape();
            if p.m.is_none() {
                p.m = Some(Tensor::zeros(rows, cols));
                p.v = Some(Tensor::zeros(rows, cols));
            }
            let m = p.m.as_mut().unwrap().as_mut_slice();
            let v = p.v.as_mut().unwrap().as_mut_slice();
            let w = p.value.as_mut_slice();
            let mut update = |i: usize, g: f32, lr: f32, b1: f32, b2: f32, eps: f32, wd: f32| {
                m[i] = b1 * m[i] + (1.0 - b1) * g;
                v[i] = b2 * v[i] + (1.0 - b2) * g * g;
                let mh = m[i] / bc1;
                let vh = v[i] / bc2;
                w[i] -= lr * (mh / (vh.sqrt() + eps) + wd * w[i]);
            };
            match grad {
                GradAccum::None => {}
                GradAccum::Dense(g) => {
                    for (i, &gv) in g.as_slice().iter().enumerate() {
                        update(i, gv, self.lr, self.beta1, self.beta2, self.eps, self.weight_decay);
                    }
                }
                GradAccum::Sparse(map) => {
                    // Lazy AdamW: untouched rows keep stale moments. This is
                    // the standard sparse-Adam approximation.
                    for (r, row) in map {
                        for (c, &gv) in row.iter().enumerate() {
                            update(
                                r * cols + c,
                                gv,
                                self.lr,
                                self.beta1,
                                self.beta2,
                                self.eps,
                                self.weight_decay,
                            );
                        }
                    }
                }
            }
        }
    }
}

/// Plain stochastic gradient descent (used by baseline encoders and tests).
#[derive(Debug, Clone)]
pub struct Sgd {
    pub lr: f32,
}

impl Sgd {
    pub fn new(lr: f32) -> Self {
        Sgd { lr }
    }

    /// Apply one step and clear gradients.
    pub fn step(&mut self, store: &mut ParamStore) {
        for p in &mut store.params {
            let grad = std::mem::take(&mut p.grad);
            let cols = p.value.cols();
            let w = p.value.as_mut_slice();
            match grad {
                GradAccum::None => {}
                GradAccum::Dense(g) => {
                    for (wi, &gv) in w.iter_mut().zip(g.as_slice()) {
                        *wi -= self.lr * gv;
                    }
                }
                GradAccum::Sparse(map) => {
                    for (r, row) in map {
                        for (c, &gv) in row.iter().enumerate() {
                            w[r * cols + c] -= self.lr * gv;
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adamw_minimizes_quadratic() {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::from_vec(1, 1, vec![5.0]));
        let mut opt = AdamW::new(0.1);
        for _ in 0..300 {
            // d/dw (w-2)^2 = 2(w-2)
            let wv = store.value(w).get(0, 0);
            store.accumulate_grad(w, Grad::Dense(Tensor::from_vec(1, 1, vec![2.0 * (wv - 2.0)])));
            opt.step(&mut store);
        }
        let wv = store.value(w).get(0, 0);
        assert!((wv - 2.0).abs() < 0.1, "w={wv}");
    }

    #[test]
    fn sparse_grads_only_touch_their_rows() {
        let mut store = ParamStore::new();
        let e = store.add("emb", Tensor::zeros(4, 2));
        store.accumulate_grad(
            e,
            Grad::SparseRows { rows: 4, cols: 2, entries: vec![(1, vec![1.0, 1.0])] },
        );
        let mut opt = Sgd::new(0.5);
        opt.step(&mut store);
        let v = store.value(e);
        assert_eq!(v.row(0), &[0.0, 0.0]);
        assert_eq!(v.row(1), &[-0.5, -0.5]);
        assert_eq!(v.row(2), &[0.0, 0.0]);
    }

    #[test]
    fn grad_accumulation_merges_sparse_entries() {
        let mut store = ParamStore::new();
        let e = store.add("emb", Tensor::zeros(3, 1));
        store.accumulate_grad(
            e,
            Grad::SparseRows { rows: 3, cols: 1, entries: vec![(0, vec![1.0]), (2, vec![3.0])] },
        );
        store.accumulate_grad(
            e,
            Grad::SparseRows { rows: 3, cols: 1, entries: vec![(0, vec![1.5])] },
        );
        let g = store.dense_grad(e).unwrap();
        assert_eq!(g.as_slice(), &[2.5, 0.0, 3.0]);
    }

    #[test]
    fn merge_grads_matches_sequential_accumulation() {
        // Two shards merged with a 1/2 scale must equal accumulating the
        // same contributions serially at half weight.
        let build = || {
            let mut s = ParamStore::new();
            let w = s.add("w", Tensor::zeros(1, 2));
            let e = s.add("emb", Tensor::zeros(3, 2));
            (s, w, e)
        };
        let shard1: GradShard = vec![
            (ParamId(0), Grad::Dense(Tensor::from_row(vec![1.0, 2.0]))),
            (ParamId(1), Grad::SparseRows { rows: 3, cols: 2, entries: vec![(1, vec![4.0, 4.0])] }),
        ];
        let shard2: GradShard = vec![(ParamId(0), Grad::Dense(Tensor::from_row(vec![3.0, -1.0])))];

        let (mut merged, w, e) = build();
        merged.merge_grads(vec![shard1.clone(), shard2.clone()], 0.5);

        let (mut serial, _, _) = build();
        for shard in [shard1, shard2] {
            for (pid, mut g) in shard {
                g.scale_in_place(0.5);
                serial.accumulate_grad(pid, g);
            }
        }
        assert_eq!(
            merged.dense_grad(w).unwrap().as_slice(),
            serial.dense_grad(w).unwrap().as_slice()
        );
        assert_eq!(
            merged.dense_grad(e).unwrap().as_slice(),
            serial.dense_grad(e).unwrap().as_slice()
        );
        assert_eq!(merged.dense_grad(w).unwrap().as_slice(), &[2.0, 0.5]);
    }

    #[test]
    fn clip_grad_norm_scales_down() {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::zeros(1, 2));
        store.accumulate_grad(w, Grad::Dense(Tensor::from_row(vec![3.0, 4.0]))); // norm 5
        store.clip_grad_norm(1.0);
        let g = store.dense_grad(w).unwrap();
        assert!((g.norm() - 1.0).abs() < 1e-5);
    }

    #[test]
    #[should_panic(expected = "duplicate parameter name")]
    fn duplicate_names_rejected() {
        let mut store = ParamStore::new();
        store.add("w", Tensor::zeros(1, 1));
        store.add("w", Tensor::zeros(1, 1));
    }
}
