//! Read-only i8 quantization for the inference hot path.
//!
//! Training stays f32; serving freezes the trained [`ParamStore`] into
//! per-row symmetrically quantized matrices ([`QuantizedStore::freeze`]) and
//! scores with i8 dot products accumulated in i32. The layout is chosen for
//! the read side: a [`QuantizedMatrix`] stores its reduction dimension
//! contiguously, so a matrix–vector product walks both operands with unit
//! stride and no heap allocation.
//!
//! Per-row symmetric scheme: for each row, `scale = max_abs / 127` (floored
//! at [`f32::MIN_POSITIVE`] for nonzero rows so the reciprocal stays finite)
//! and `q = round(x / scale)` clamped to `[-127, 127]`. The dequantized
//! value `scale * q` is within `scale / 2` of the original — the bound the
//! property tests in `tests/quant.rs` hold the implementation to. All-zero
//! rows get `scale = 0` and all-zero codes.

use crate::optim::{ParamId, ParamStore};
use crate::tensor::Tensor;

/// Quantize `src` into `dst`, returning the per-row scale.
///
/// # Panics
/// Panics if `dst.len() != src.len()`.
pub fn quantize_row_into(src: &[f32], dst: &mut [i8]) -> f32 {
    assert_eq!(src.len(), dst.len(), "quantize_row_into length mismatch");
    let max = src.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
    if max == 0.0 {
        dst.fill(0);
        return 0.0;
    }
    // Floor the scale at the smallest normal so `1/scale` is finite even for
    // rows of subnormals; the scale/2 error bound still holds (codes just
    // use less of the i8 range).
    let scale = (max / 127.0).max(f32::MIN_POSITIVE);
    let inv = 1.0 / scale;
    for (d, &v) in dst.iter_mut().zip(src) {
        *d = (v * inv).round().clamp(-127.0, 127.0) as i8;
    }
    scale
}

/// i8 dot product with i32 accumulation.
///
/// Each product is at most `127 * 127 = 16129`, so the accumulator is exact
/// for any vector shorter than ~133k elements — far beyond every dimension
/// in this workspace (the widest reduction is `buckets = 8192`). On x86-64
/// with AVX2 the reduction runs through a `vpmaddwd` kernel; integer
/// arithmetic is exact, so the SIMD and scalar paths return bit-identical
/// results and determinism is unaffected by which machine runs the model.
#[inline]
pub fn dot_i8(a: &[i8], b: &[i8]) -> i32 {
    debug_assert_eq!(a.len(), b.len());
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: AVX2 support was just verified at runtime.
        return unsafe { x86::dot_i8_avx2(a, b) };
    }
    dot_i8_scalar(a, b)
}

#[inline]
fn dot_i8_scalar(a: &[i8], b: &[i8]) -> i32 {
    let mut acc = 0i32;
    for (&x, &y) in a.iter().zip(b) {
        acc += x as i32 * y as i32;
    }
    acc
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use std::arch::x86_64::*;

    /// `dot_i8` over AVX2: 16 lanes per iteration, sign-extended to i16 and
    /// reduced pairwise into i32 by `vpmaddwd` (exact — every product fits
    /// i16 headroom and every pair sum fits i32).
    ///
    /// # Safety
    /// Requires AVX2; callers must check `is_x86_feature_detected!("avx2")`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn dot_i8_avx2(a: &[i8], b: &[i8]) -> i32 {
        let n = a.len().min(b.len());
        let mut acc = _mm256_setzero_si256();
        let mut i = 0;
        while i + 16 <= n {
            let va = _mm256_cvtepi8_epi16(_mm_loadu_si128(a.as_ptr().add(i) as *const __m128i));
            let vb = _mm256_cvtepi8_epi16(_mm_loadu_si128(b.as_ptr().add(i) as *const __m128i));
            acc = _mm256_add_epi32(acc, _mm256_madd_epi16(va, vb));
            i += 16;
        }
        let quad = _mm_add_epi32(_mm256_castsi256_si128(acc), _mm256_extracti128_si256(acc, 1));
        let pair = _mm_add_epi32(quad, _mm_shuffle_epi32(quad, 0b01_00_11_10));
        let one = _mm_add_epi32(pair, _mm_shuffle_epi32(pair, 0b00_00_00_01));
        let mut total = _mm_cvtsi128_si32(one);
        while i < n {
            total += a[i] as i32 * b[i] as i32;
            i += 1;
        }
        total
    }
}

/// A quantized vector: one scale plus i8 codes, with a reusable buffer so
/// per-step activation quantization allocates nothing after warm-up.
#[derive(Debug, Clone, Default)]
pub struct QuantizedVec {
    pub scale: f32,
    pub data: Vec<i8>,
}

impl QuantizedVec {
    pub fn new() -> Self {
        Self::default()
    }

    /// Quantize a fresh vector.
    pub fn quantize(src: &[f32]) -> Self {
        let mut q = Self::new();
        q.quantize_into(src);
        q
    }

    /// Re-quantize in place, reusing the code buffer.
    pub fn quantize_into(&mut self, src: &[f32]) {
        self.data.resize(src.len(), 0);
        self.scale = quantize_row_into(src, &mut self.data);
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

/// A per-row symmetrically quantized matrix: `scales[r]` dequantizes row `r`
/// of the contiguous i8 `data`.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedMatrix {
    rows: usize,
    cols: usize,
    scales: Vec<f32>,
    data: Vec<i8>,
}

impl QuantizedMatrix {
    /// Quantize a tensor row by row, keeping its layout.
    pub fn from_tensor(t: &Tensor) -> Self {
        let (rows, cols) = t.shape();
        let mut scales = Vec::with_capacity(rows);
        let mut data = vec![0i8; rows * cols];
        for r in 0..rows {
            scales.push(quantize_row_into(t.row(r), &mut data[r * cols..(r + 1) * cols]));
        }
        QuantizedMatrix { rows, cols, scales, data }
    }

    /// Quantize the *transpose* of a tensor, row by row.
    ///
    /// A linear map stored as `W: [in, out]` becomes `[out, in]` with one
    /// scale per output unit, so `y[j]` reduces over a contiguous row.
    pub fn from_tensor_transposed(t: &Tensor) -> Self {
        Self::from_tensor(&t.transpose())
    }

    /// Rebuild from raw parts (codec load path).
    ///
    /// # Panics
    /// Panics if the buffer lengths disagree with the shape; the codec
    /// validates before calling this.
    pub fn from_raw(rows: usize, cols: usize, scales: Vec<f32>, data: Vec<i8>) -> Self {
        assert_eq!(scales.len(), rows, "scale count mismatch");
        assert_eq!(data.len(), rows * cols, "code count mismatch");
        QuantizedMatrix { rows, cols, scales, data }
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    pub fn scales(&self) -> &[f32] {
        &self.scales
    }

    pub fn data(&self) -> &[i8] {
        &self.data
    }

    #[inline]
    pub fn scale(&self, r: usize) -> f32 {
        self.scales[r]
    }

    /// Row `r` of the i8 codes.
    #[inline]
    pub fn row(&self, r: usize) -> &[i8] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Dequantized f32 value of row `r`, column `c`.
    pub fn dequantized_row(&self, r: usize) -> Vec<f32> {
        let s = self.scales[r];
        self.row(r).iter().map(|&q| s * q as f32).collect()
    }

    /// Full dequantization back to a tensor (same layout as stored).
    pub fn dequantize(&self) -> Tensor {
        let mut out = Vec::with_capacity(self.rows * self.cols);
        for r in 0..self.rows {
            let s = self.scales[r];
            out.extend(self.row(r).iter().map(|&q| s * q as f32));
        }
        Tensor::from_vec(self.rows, self.cols, out)
    }

    /// `scales[r] * x.scale * dot_i8(row r, x)`.
    #[inline]
    pub fn dot_row(&self, r: usize, x: &QuantizedVec) -> f32 {
        self.scales[r] * x.scale * dot_i8(self.row(r), &x.data) as f32
    }

    /// Matrix–vector product into a reusable output buffer:
    /// `out[r] = scales[r] * x.scale * dot_i8(row r, x)`.
    ///
    /// The CPU-feature dispatch is hoisted out of the row loop, so the hot
    /// path is one contiguous pass over `data` with no per-row branching.
    ///
    /// # Panics
    /// Panics if `x.len() != cols`.
    pub fn matvec_into(&self, x: &QuantizedVec, out: &mut Vec<f32>) {
        assert_eq!(x.len(), self.cols, "matvec length mismatch");
        out.clear();
        out.reserve(self.rows);
        if self.cols == 0 {
            out.resize(self.rows, 0.0);
            return;
        }
        let xs = x.scale;
        #[cfg(target_arch = "x86_64")]
        if std::arch::is_x86_feature_detected!("avx2") {
            for (row, &s) in self.data.chunks_exact(self.cols).zip(&self.scales) {
                // SAFETY: AVX2 support was just verified at runtime.
                let d = unsafe { x86::dot_i8_avx2(row, &x.data) };
                out.push(s * xs * d as f32);
            }
            return;
        }
        for (row, &s) in self.data.chunks_exact(self.cols).zip(&self.scales) {
            out.push(s * xs * dot_i8_scalar(row, &x.data) as f32);
        }
    }
}

/// One frozen parameter: the quantized matrix plus whether it was stored
/// transposed relative to the f32 original (true for linear-map weights, so
/// matvec reduces along contiguous rows).
#[derive(Debug, Clone, PartialEq)]
pub struct QuantEntry {
    pub name: String,
    pub transposed: bool,
    pub matrix: QuantizedMatrix,
}

/// All parameters of a model frozen to i8, indexed by [`ParamId`] in
/// registration order — the same order [`ParamStore::iter_values`] walks, so
/// the ids handed out at model construction address both stores.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QuantizedStore {
    entries: Vec<QuantEntry>,
}

impl QuantizedStore {
    /// Freeze every parameter of `store`. Parameters for which `transpose`
    /// returns true (by name) are stored transposed.
    pub fn freeze(store: &ParamStore, transpose: impl Fn(&str) -> bool) -> Self {
        let entries = store
            .iter_values()
            .map(|(name, value)| {
                let t = transpose(name);
                QuantEntry {
                    name: name.to_string(),
                    transposed: t,
                    matrix: if t {
                        QuantizedMatrix::from_tensor_transposed(value)
                    } else {
                        QuantizedMatrix::from_tensor(value)
                    },
                }
            })
            .collect();
        QuantizedStore { entries }
    }

    /// Rebuild from decoded entries (codec load path).
    pub fn from_entries(entries: Vec<QuantEntry>) -> Self {
        QuantizedStore { entries }
    }

    /// The entry for a parameter id handed out by the matching [`ParamStore`].
    #[inline]
    pub fn get(&self, id: ParamId) -> &QuantEntry {
        &self.entries[id.0]
    }

    pub fn entries(&self) -> &[QuantEntry] {
        &self.entries
    }

    pub fn by_name(&self, name: &str) -> Option<&QuantEntry> {
        self.entries.iter().find(|e| e.name == name)
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Heap bytes of codes + scales (index-size accounting).
    pub fn num_bytes(&self) -> usize {
        self.entries
            .iter()
            .map(|e| e.matrix.data.len() + e.matrix.scales.len() * std::mem::size_of::<f32>())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantize_roundtrip_within_half_scale() {
        let t = Tensor::from_vec(2, 3, vec![1.0, -2.5, 0.3, 100.0, -0.001, 42.0]);
        let q = QuantizedMatrix::from_tensor(&t);
        let d = q.dequantize();
        for r in 0..2 {
            for (orig, deq) in t.row(r).iter().zip(d.row(r)) {
                assert!(
                    (orig - deq).abs() <= q.scale(r) * 0.5 + 1e-12,
                    "row {r}: {orig} vs {deq} (scale {})",
                    q.scale(r)
                );
            }
        }
    }

    #[test]
    fn zero_rows_get_zero_scale_and_codes() {
        let t = Tensor::zeros(3, 4);
        let q = QuantizedMatrix::from_tensor(&t);
        assert!(q.scales().iter().all(|&s| s == 0.0));
        assert!(q.data().iter().all(|&v| v == 0));
        assert!(q.dequantize().approx_eq(&t, 0.0));
    }

    #[test]
    fn transposed_layout_matches_matmul() {
        // y = x · W  must equal the transposed-quantized matvec up to the
        // quantization error bound.
        let w = Tensor::from_vec(3, 2, vec![0.5, -1.0, 0.25, 2.0, -0.75, 0.125]);
        let x = vec![1.0f32, -2.0, 0.5];
        let exact = Tensor::from_row(x.clone()).matmul(&w);

        let qw = QuantizedMatrix::from_tensor_transposed(&w);
        assert_eq!((qw.rows(), qw.cols()), (2, 3));
        let qx = QuantizedVec::quantize(&x);
        let mut out = Vec::new();
        qw.matvec_into(&qx, &mut out);
        for (j, (&e, &got)) in exact.as_slice().iter().zip(&out).enumerate() {
            assert!((e - got).abs() < 0.05, "col {j}: exact {e} vs quant {got}");
        }
    }

    #[test]
    fn dot_i8_is_exact() {
        let a = vec![127i8; 1000];
        let b = vec![-127i8; 1000];
        assert_eq!(dot_i8(&a, &b), -127 * 127 * 1000);
    }

    #[test]
    fn quantized_vec_reuses_buffer() {
        let mut q = QuantizedVec::new();
        q.quantize_into(&[1.0, 2.0, 3.0]);
        let cap = q.data.capacity();
        q.quantize_into(&[-3.0, 0.0, 1.5]);
        assert_eq!(q.data.capacity(), cap, "re-quantization must not reallocate");
        assert_eq!(q.len(), 3);
    }

    #[test]
    fn freeze_preserves_param_order_and_orientation() {
        let mut store = ParamStore::new();
        let a = store.add("enc.w", Tensor::from_vec(2, 3, vec![1.0; 6]));
        let b = store.add("emb.weight", Tensor::from_vec(4, 2, vec![0.5; 8]));
        let qs = QuantizedStore::freeze(&store, |name| name.ends_with(".w"));
        assert_eq!(qs.len(), 2);
        assert!(qs.get(a).transposed);
        assert_eq!((qs.get(a).matrix.rows(), qs.get(a).matrix.cols()), (3, 2));
        assert!(!qs.get(b).transposed);
        assert_eq!((qs.get(b).matrix.rows(), qs.get(b).matrix.cols()), (4, 2));
        assert_eq!(qs.by_name("emb.weight").unwrap().name, "emb.weight");
    }
}
