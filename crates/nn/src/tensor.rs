//! Dense, row-major `f32` matrices.
//!
//! Every value in this crate is a 2-D tensor; vectors are single-row
//! matrices. Data is shared behind an [`Arc`] so cloning a tensor (e.g. to
//! capture it in a backward closure) is O(1); mutation goes through
//! copy-on-write ([`Arc::make_mut`]).

use std::fmt;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

/// A dense row-major matrix of `f32`.
#[derive(Clone, Serialize, Deserialize)]
pub struct Tensor {
    rows: usize,
    cols: usize,
    data: Arc<Vec<f32>>,
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor[{}x{}]", self.rows, self.cols)?;
        if self.len() <= 16 {
            write!(f, " {:?}", self.data.as_slice())?;
        }
        Ok(())
    }
}

impl Tensor {
    /// A `rows × cols` tensor filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self::full(rows, cols, 0.0)
    }

    /// A `rows × cols` tensor filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Tensor { rows, cols, data: Arc::new(vec![value; rows * cols]) }
    }

    /// Builds a tensor from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "tensor data length mismatch");
        Tensor { rows, cols, data: Arc::new(data) }
    }

    /// A single-row tensor (a vector).
    pub fn from_row(data: Vec<f32>) -> Self {
        let cols = data.len();
        Self::from_vec(1, cols, data)
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.rows * self.cols
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the underlying buffer (copy-on-write).
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        Arc::make_mut(&mut self.data).as_mut_slice()
    }

    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        let cols = self.cols;
        self.as_mut_slice()[r * cols + c] = v;
    }

    /// Borrow row `r` as a slice.
    pub fn row(&self, r: usize) -> &[f32] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copy row `r` into a new single-row tensor.
    pub fn row_tensor(&self, r: usize) -> Tensor {
        Tensor::from_row(self.row(r).to_vec())
    }

    /// Matrix product `self × rhs`.
    ///
    /// # Panics
    /// Panics if `self.cols != rhs.rows`.
    pub fn matmul(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul shape mismatch: {}x{} × {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let (m, k, n) = (self.rows, self.cols, rhs.cols);
        let mut out = vec![0.0f32; m * n];
        let a = self.as_slice();
        let b = rhs.as_slice();
        // i-k-j loop order: unit-stride access to both `b` and `out`.
        for i in 0..m {
            let arow = &a[i * k..(i + 1) * k];
            let orow = &mut out[i * n..(i + 1) * n];
            for (kk, &av) in arow.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let brow = &b[kk * n..(kk + 1) * n];
                for (o, &bv) in orow.iter_mut().zip(brow) {
                    *o += av * bv;
                }
            }
        }
        Tensor::from_vec(m, n, out)
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Tensor {
        let mut out = vec![0.0f32; self.len()];
        for r in 0..self.rows {
            for c in 0..self.cols {
                out[c * self.rows + r] = self.get(r, c);
            }
        }
        Tensor::from_vec(self.cols, self.rows, out)
    }

    /// Element-wise sum. Shapes must match exactly, except a single-row rhs is
    /// broadcast over all rows of `self`.
    pub fn add(&self, rhs: &Tensor) -> Tensor {
        if rhs.rows == 1 && self.rows > 1 {
            assert_eq!(self.cols, rhs.cols, "broadcast add width mismatch");
            let mut out = self.clone();
            let o = out.as_mut_slice();
            for r in 0..self.rows {
                for c in 0..self.cols {
                    o[r * self.cols + c] += rhs.data[c];
                }
            }
            return out;
        }
        assert_eq!(self.shape(), rhs.shape(), "add shape mismatch");
        self.zip_map(rhs, |a, b| a + b)
    }

    /// Element-wise difference (no broadcasting).
    pub fn sub(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.shape(), rhs.shape(), "sub shape mismatch");
        self.zip_map(rhs, |a, b| a - b)
    }

    /// Element-wise (Hadamard) product.
    pub fn mul_elem(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.shape(), rhs.shape(), "mul_elem shape mismatch");
        self.zip_map(rhs, |a, b| a * b)
    }

    /// Multiply every element by `s`.
    pub fn scale(&self, s: f32) -> Tensor {
        self.map(|v| v * s)
    }

    /// Apply `f` element-wise, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor::from_vec(self.rows, self.cols, self.data.iter().map(|&v| f(v)).collect())
    }

    fn zip_map(&self, rhs: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        let data = self.data.iter().zip(rhs.data.iter()).map(|(&a, &b)| f(a, b)).collect();
        Tensor::from_vec(self.rows, self.cols, data)
    }

    /// Accumulate `rhs * s` into `self` in place.
    pub fn add_scaled_assign(&mut self, rhs: &Tensor, s: f32) {
        assert_eq!(self.shape(), rhs.shape(), "add_scaled_assign shape mismatch");
        let dst = self.as_mut_slice();
        for (d, &r) in dst.iter_mut().zip(rhs.data.iter()) {
            *d += r * s;
        }
    }

    pub fn tanh(&self) -> Tensor {
        self.map(f32::tanh)
    }

    pub fn sigmoid(&self) -> Tensor {
        self.map(|v| 1.0 / (1.0 + (-v).exp()))
    }

    pub fn relu(&self) -> Tensor {
        self.map(|v| v.max(0.0))
    }

    /// Mean over rows: `[m,n] → [1,n]`. The mean of zero rows is a zero vector.
    pub fn mean_rows(&self) -> Tensor {
        let mut out = vec![0.0f32; self.cols];
        if self.rows == 0 {
            return Tensor::from_row(out);
        }
        for r in 0..self.rows {
            for (o, &v) in out.iter_mut().zip(self.row(r)) {
                *o += v;
            }
        }
        let inv = 1.0 / self.rows as f32;
        for o in &mut out {
            *o *= inv;
        }
        Tensor::from_row(out)
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Euclidean (Frobenius) norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Row-wise softmax.
    pub fn softmax_rows(&self) -> Tensor {
        let mut out = self.clone();
        let cols = self.cols;
        let buf = out.as_mut_slice();
        for r in 0..self.rows {
            let row = &mut buf[r * cols..(r + 1) * cols];
            softmax_in_place(row);
        }
        out
    }

    /// Index of the maximum element of row `r` (first on ties).
    pub fn argmax_row(&self, r: usize) -> usize {
        let row = self.row(r);
        let mut best = 0;
        let mut best_v = f32::NEG_INFINITY;
        for (i, &v) in row.iter().enumerate() {
            if v > best_v {
                best_v = v;
                best = i;
            }
        }
        best
    }

    /// Gather rows `indices` from `self` into a new `[indices.len(), cols]`
    /// tensor (embedding lookup).
    pub fn lookup_rows(&self, indices: &[usize]) -> Tensor {
        let mut out = Vec::with_capacity(indices.len() * self.cols);
        for &i in indices {
            assert!(i < self.rows, "lookup index {i} out of range ({} rows)", self.rows);
            out.extend_from_slice(self.row(i));
        }
        Tensor::from_vec(indices.len(), self.cols, out)
    }

    /// Horizontal concatenation `[m,a] ++ [m,b] → [m,a+b]`.
    pub fn concat_cols(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.rows, rhs.rows, "concat_cols row mismatch");
        let cols = self.cols + rhs.cols;
        let mut out = Vec::with_capacity(self.rows * cols);
        for r in 0..self.rows {
            out.extend_from_slice(self.row(r));
            out.extend_from_slice(rhs.row(r));
        }
        Tensor::from_vec(self.rows, cols, out)
    }

    /// Cosine similarity between two single-row tensors; 0.0 when either has
    /// zero norm.
    pub fn cosine(&self, rhs: &Tensor) -> f32 {
        assert_eq!(self.shape(), rhs.shape(), "cosine shape mismatch");
        let dot: f32 = self.data.iter().zip(rhs.data.iter()).map(|(&a, &b)| a * b).sum();
        let d = self.norm() * rhs.norm();
        if d == 0.0 {
            0.0
        } else {
            dot / d
        }
    }

    /// True if every element differs from `rhs` by at most `tol`.
    pub fn approx_eq(&self, rhs: &Tensor, tol: f32) -> bool {
        self.shape() == rhs.shape()
            && self.data.iter().zip(rhs.data.iter()).all(|(&a, &b)| (a - b).abs() <= tol)
    }
}

/// Numerically stable in-place softmax of a slice.
pub fn softmax_in_place(row: &mut [f32]) {
    if row.is_empty() {
        return;
    }
    let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0;
    for v in row.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    if sum > 0.0 {
        for v in row.iter_mut() {
            *v /= sum;
        }
    }
}

/// Numerically stable log-softmax of a slice into a new vector.
pub fn log_softmax(row: &[f32]) -> Vec<f32> {
    let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let log_sum: f32 = row.iter().map(|&v| (v - max).exp()).sum::<f32>().ln();
    row.iter().map(|&v| v - max - log_sum).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_shape() {
        let t = Tensor::zeros(3, 4);
        assert_eq!(t.shape(), (3, 4));
        assert_eq!(t.len(), 12);
        assert!(t.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let i = Tensor::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]);
        assert!(a.matmul(&i).approx_eq(&a, 1e-6));
        assert!(i.matmul(&a).approx_eq(&a, 1e-6));
    }

    #[test]
    fn matmul_rectangular() {
        let a = Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Tensor::from_vec(3, 1, vec![1.0, 0.0, -1.0]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), (2, 1));
        assert_eq!(c.as_slice(), &[-2.0, -2.0]);
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_bad_shapes_panic() {
        let a = Tensor::zeros(2, 3);
        let b = Tensor::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn broadcast_add_row() {
        let a = Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = Tensor::from_row(vec![10.0, 20.0]);
        let c = a.add(&b);
        assert_eq!(c.as_slice(), &[11.0, 22.0, 13.0, 24.0]);
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let t = a.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert!(t.transpose().approx_eq(&a, 0.0));
    }

    #[test]
    fn mean_rows_basic() {
        let a = Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let m = a.mean_rows();
        assert_eq!(m.as_slice(), &[2.0, 3.0]);
    }

    #[test]
    fn mean_rows_empty_is_zero() {
        let a = Tensor::zeros(0, 3);
        assert_eq!(a.mean_rows().as_slice(), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn softmax_rows_sums_to_one() {
        let a = Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0]);
        let s = a.softmax_rows();
        for r in 0..2 {
            let sum: f32 = s.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn softmax_stable_under_large_logits() {
        let mut row = vec![1000.0, 1001.0, 999.0];
        softmax_in_place(&mut row);
        assert!(row.iter().all(|v| v.is_finite()));
        assert!((row.iter().sum::<f32>() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn log_softmax_matches_softmax() {
        let row = vec![0.5, -0.5, 2.0];
        let ls = log_softmax(&row);
        let mut sm = row.clone();
        softmax_in_place(&mut sm);
        for (a, b) in ls.iter().zip(sm.iter()) {
            assert!((a.exp() - b).abs() < 1e-5);
        }
    }

    #[test]
    fn lookup_rows_gathers() {
        let e = Tensor::from_vec(3, 2, vec![1.0, 1.0, 2.0, 2.0, 3.0, 3.0]);
        let g = e.lookup_rows(&[2, 0, 2]);
        assert_eq!(g.as_slice(), &[3.0, 3.0, 1.0, 1.0, 3.0, 3.0]);
    }

    #[test]
    fn concat_cols_widths() {
        let a = Tensor::from_vec(2, 1, vec![1.0, 2.0]);
        let b = Tensor::from_vec(2, 2, vec![3.0, 4.0, 5.0, 6.0]);
        let c = a.concat_cols(&b);
        assert_eq!(c.shape(), (2, 3));
        assert_eq!(c.row(0), &[1.0, 3.0, 4.0]);
        assert_eq!(c.row(1), &[2.0, 5.0, 6.0]);
    }

    #[test]
    fn cosine_of_parallel_vectors() {
        let a = Tensor::from_row(vec![1.0, 2.0]);
        let b = Tensor::from_row(vec![2.0, 4.0]);
        assert!((a.cosine(&b) - 1.0).abs() < 1e-6);
        let zero = Tensor::from_row(vec![0.0, 0.0]);
        assert_eq!(a.cosine(&zero), 0.0);
    }

    #[test]
    fn clone_is_cheap_and_cow() {
        let a = Tensor::from_row(vec![1.0, 2.0]);
        let mut b = a.clone();
        b.set(0, 0, 9.0);
        assert_eq!(a.get(0, 0), 1.0, "clone must not alias after mutation");
        assert_eq!(b.get(0, 0), 9.0);
    }

    #[test]
    fn argmax_first_on_ties() {
        let a = Tensor::from_row(vec![0.5, 1.0, 1.0]);
        assert_eq!(a.argmax_row(0), 1);
    }
}
