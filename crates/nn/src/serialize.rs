//! Parameter persistence.
//!
//! Models are saved as JSON: human-inspectable, dependency-light, and large
//! enough models are out of scope for this reproduction. The serialized size
//! is also what the Table 5 "Disk" column measures for learned indexes.

use std::io::{Read, Write};
use std::path::Path;

use crate::optim::ParamStore;

/// Errors from saving/loading parameter stores.
#[derive(Debug)]
pub enum PersistError {
    Io(std::io::Error),
    Codec(serde_json::Error),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "io error: {e}"),
            PersistError::Codec(e) => write!(f, "codec error: {e}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<serde_json::Error> for PersistError {
    fn from(e: serde_json::Error) -> Self {
        PersistError::Codec(e)
    }
}

/// Serialize a store to a writer.
pub fn save_store<W: Write>(store: &ParamStore, w: W) -> Result<(), PersistError> {
    serde_json::to_writer(w, store)?;
    Ok(())
}

/// Deserialize a store from a reader. Optimizer state and gradients are not
/// persisted; training can resume but Adam moments restart from zero.
pub fn load_store<R: Read>(r: R) -> Result<ParamStore, PersistError> {
    Ok(serde_json::from_reader(r)?)
}

/// Save to a file path.
pub fn save_store_file(store: &ParamStore, path: impl AsRef<Path>) -> Result<(), PersistError> {
    let f = std::fs::File::create(path)?;
    save_store(store, std::io::BufWriter::new(f))
}

/// Load from a file path.
pub fn load_store_file(path: impl AsRef<Path>) -> Result<ParamStore, PersistError> {
    let f = std::fs::File::open(path)?;
    load_store(std::io::BufReader::new(f))
}

/// Serialized size in bytes (what an on-disk index would occupy).
pub fn serialized_size(store: &ParamStore) -> usize {
    serde_json::to_vec(store).map(|v| v.len()).unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::seeded_rng;
    use crate::init::xavier_uniform;

    #[test]
    fn roundtrip_preserves_values_and_names() {
        let mut rng = seeded_rng(9);
        let mut store = ParamStore::new();
        let a = store.add("alpha", xavier_uniform(3, 2, &mut rng));
        let b = store.add("beta", xavier_uniform(1, 5, &mut rng));
        let mut buf = Vec::new();
        save_store(&store, &mut buf).unwrap();
        let loaded = load_store(buf.as_slice()).unwrap();
        assert_eq!(loaded.len(), 2);
        let la = loaded.id_of("alpha").unwrap();
        let lb = loaded.id_of("beta").unwrap();
        assert!(loaded.value(la).approx_eq(store.value(a), 0.0));
        assert!(loaded.value(lb).approx_eq(store.value(b), 0.0));
    }

    #[test]
    fn serialized_size_is_positive() {
        let mut store = ParamStore::new();
        store.add("w", xavier_uniform(2, 2, &mut seeded_rng(1)));
        assert!(serialized_size(&store) > 0);
    }
}
