//! Parameter persistence.
//!
//! The default format is the [`crate::codec`] `DBC1` binary container:
//! compact (4 bytes per weight instead of decimal text), versioned, and
//! bit-exact — every `f32` bit pattern, including NaN payloads and
//! infinities, survives a save→load round trip. JSON stays available behind
//! [`Format::Json`] for human inspection; [`load_store`] sniffs the format
//! so both kinds of file load through one entry point. The serialized size
//! is what the Table 5 "Disk" column measures for learned indexes.

use std::io::{Read, Write};
use std::path::Path;

use crate::codec;
use crate::optim::ParamStore;

/// Errors from saving/loading parameter stores and router bundles.
#[derive(Debug)]
pub enum PersistError {
    Io(std::io::Error),
    /// JSON encode/decode failure.
    Codec(serde_json::Error),
    /// The file does not start with the `DBC1` magic (and is not JSON).
    BadMagic {
        found: [u8; 4],
    },
    /// The file is a `DBC1` container from an unknown format version.
    UnsupportedVersion {
        found: u16,
        supported: u16,
    },
    /// Structurally invalid content: truncation, bad framing, shape or
    /// name mismatches against the expected model layout.
    Corrupt(String),
    /// A non-finite weight cannot be written as JSON (it would silently
    /// become `null`); save binary instead or fix the weights.
    NonFinite {
        param: String,
    },
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "io error: {e}"),
            PersistError::Codec(e) => write!(f, "codec error: {e}"),
            PersistError::BadMagic { found } => {
                write!(f, "bad magic {found:?}: not a DBC1 file (and not JSON)")
            }
            PersistError::UnsupportedVersion { found, supported } => {
                write!(f, "unsupported DBC1 version {found} (this build reads {supported})")
            }
            PersistError::Corrupt(msg) => write!(f, "corrupt file: {msg}"),
            PersistError::NonFinite { param } => {
                write!(
                    f,
                    "parameter {param:?} holds a non-finite value; JSON would corrupt it \
                     to null — save with Format::Binary instead"
                )
            }
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<serde_json::Error> for PersistError {
    fn from(e: serde_json::Error) -> Self {
        PersistError::Codec(e)
    }
}

/// On-disk representation to write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Format {
    /// `DBC1` binary container (compact, bit-exact; the default).
    Binary,
    /// Human-inspectable JSON. Refuses non-finite weights, which JSON
    /// cannot represent.
    Json,
}

/// Detect which format a byte buffer holds.
///
/// Binary files start with the `DBC1` magic; JSON files start with `{`
/// (after optional whitespace). Anything else is a typed error.
pub fn sniff_format(bytes: &[u8]) -> Result<Format, PersistError> {
    if bytes.starts_with(&codec::MAGIC) {
        return Ok(Format::Binary);
    }
    if bytes.iter().copied().find(|b| !b.is_ascii_whitespace()) == Some(b'{') {
        return Ok(Format::Json);
    }
    match bytes {
        [a, b, c, d, ..] => Err(PersistError::BadMagic { found: [*a, *b, *c, *d] }),
        _ => {
            Err(PersistError::Corrupt(format!("file too short to identify: {} bytes", bytes.len())))
        }
    }
}

/// Refuse to JSON-encode a store holding non-finite weights: the vendored
/// (and the real) serde_json writes them as `null`, which silently breaks
/// the next load. Call before any JSON save path; binary saves preserve
/// non-finite bit patterns and need no guard.
pub fn ensure_finite(store: &ParamStore) -> Result<(), PersistError> {
    for (name, value) in store.iter_values() {
        if let Some(i) = value.as_slice().iter().position(|v| !v.is_finite()) {
            return Err(PersistError::NonFinite { param: format!("{name}[{i}]") });
        }
    }
    Ok(())
}

/// Serialize a store to a writer in the given format.
pub fn save_store_as<W: Write>(
    store: &ParamStore,
    mut w: W,
    format: Format,
) -> Result<(), PersistError> {
    match format {
        Format::Binary => Ok(w.write_all(&codec::encode_store(store))?),
        Format::Json => {
            ensure_finite(store)?;
            serde_json::to_writer(w, store)?;
            Ok(())
        }
    }
}

/// Serialize a store to a writer (binary `DBC1`).
pub fn save_store<W: Write>(store: &ParamStore, w: W) -> Result<(), PersistError> {
    save_store_as(store, w, Format::Binary)
}

/// Deserialize a store from a byte buffer, sniffing the format. Optimizer
/// state and gradients are not persisted; training can resume but Adam
/// moments restart from zero.
pub fn load_store_slice(bytes: &[u8]) -> Result<ParamStore, PersistError> {
    match sniff_format(bytes)? {
        Format::Binary => codec::decode_store(bytes),
        Format::Json => Ok(serde_json::from_slice(bytes)?),
    }
}

/// Deserialize a store from a reader, sniffing the format.
pub fn load_store<R: Read>(mut r: R) -> Result<ParamStore, PersistError> {
    let mut buf = Vec::new();
    r.read_to_end(&mut buf)?;
    load_store_slice(&buf)
}

/// Save to a file path in the given format.
pub fn save_store_file_as(
    store: &ParamStore,
    path: impl AsRef<Path>,
    format: Format,
) -> Result<(), PersistError> {
    let f = std::fs::File::create(path)?;
    save_store_as(store, std::io::BufWriter::new(f), format)
}

/// Save to a file path (binary `DBC1`).
pub fn save_store_file(store: &ParamStore, path: impl AsRef<Path>) -> Result<(), PersistError> {
    save_store_file_as(store, path, Format::Binary)
}

/// Load from a file path (either format).
pub fn load_store_file(path: impl AsRef<Path>) -> Result<ParamStore, PersistError> {
    let f = std::fs::File::open(path)?;
    load_store(std::io::BufReader::new(f))
}

/// Serialized size in bytes (what an on-disk index would occupy). A failed
/// encoding is an error, never a silent zero-byte index: JSON refuses
/// non-finite weights, while the binary size is computed exactly.
pub fn serialized_size(store: &ParamStore, format: Format) -> Result<usize, PersistError> {
    match format {
        Format::Binary => Ok(codec::encoded_store_len(store)),
        Format::Json => {
            ensure_finite(store)?;
            Ok(serde_json::to_vec(store)?.len())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::seeded_rng;
    use crate::init::xavier_uniform;
    use crate::tensor::Tensor;

    fn sample_store() -> (ParamStore, crate::ParamId, crate::ParamId) {
        let mut rng = seeded_rng(9);
        let mut store = ParamStore::new();
        let a = store.add("alpha", xavier_uniform(3, 2, &mut rng));
        let b = store.add("beta", xavier_uniform(1, 5, &mut rng));
        (store, a, b)
    }

    #[test]
    fn binary_roundtrip_preserves_values_and_names() {
        let (store, a, b) = sample_store();
        let mut buf = Vec::new();
        save_store(&store, &mut buf).unwrap();
        assert_eq!(sniff_format(&buf).unwrap(), Format::Binary);
        let loaded = load_store(buf.as_slice()).unwrap();
        assert_eq!(loaded.len(), 2);
        let la = loaded.id_of("alpha").unwrap();
        let lb = loaded.id_of("beta").unwrap();
        assert!(loaded.value(la).approx_eq(store.value(a), 0.0));
        assert!(loaded.value(lb).approx_eq(store.value(b), 0.0));
    }

    #[test]
    fn json_roundtrip_via_sniffer() {
        let (store, a, _) = sample_store();
        let mut buf = Vec::new();
        save_store_as(&store, &mut buf, Format::Json).unwrap();
        assert_eq!(sniff_format(&buf).unwrap(), Format::Json);
        let loaded = load_store(buf.as_slice()).unwrap();
        let la = loaded.id_of("alpha").unwrap();
        assert!(loaded.value(la).approx_eq(store.value(a), 0.0));
    }

    #[test]
    fn json_save_refuses_non_finite() {
        let mut store = ParamStore::new();
        store.add("w", Tensor::from_row(vec![1.0, f32::NAN]));
        let mut buf = Vec::new();
        match save_store_as(&store, &mut buf, Format::Json) {
            Err(PersistError::NonFinite { param }) => assert_eq!(param, "w[1]"),
            other => panic!("expected NonFinite, got {other:?}"),
        }
        assert!(buf.is_empty(), "nothing must be written on failure");
        // the binary path takes the same store without complaint
        save_store_as(&store, &mut buf, Format::Binary).unwrap();
        let loaded = load_store(buf.as_slice()).unwrap();
        let w = loaded.id_of("w").unwrap();
        assert!(loaded.value(w).get(0, 1).is_nan());
    }

    #[test]
    fn serialized_size_matches_actual_output() {
        let (store, _, _) = sample_store();
        for format in [Format::Binary, Format::Json] {
            let mut buf = Vec::new();
            save_store_as(&store, &mut buf, format).unwrap();
            assert_eq!(serialized_size(&store, format).unwrap(), buf.len(), "{format:?}");
        }
    }

    #[test]
    fn serialized_size_reports_errors_not_zero() {
        let mut store = ParamStore::new();
        store.add("w", Tensor::from_row(vec![f32::INFINITY]));
        assert!(matches!(
            serialized_size(&store, Format::Json),
            Err(PersistError::NonFinite { .. })
        ));
        // binary size is exact and infallible
        assert!(serialized_size(&store, Format::Binary).unwrap() > 0);
    }

    #[test]
    fn binary_is_much_smaller_than_json() {
        let mut rng = seeded_rng(17);
        let mut store = ParamStore::new();
        store.add("emb", xavier_uniform(64, 32, &mut rng));
        let bin = serialized_size(&store, Format::Binary).unwrap();
        let json = serialized_size(&store, Format::Json).unwrap();
        assert!(bin * 100 <= json * 40, "binary {bin} should be ≤ 40% of JSON {json}");
    }

    #[test]
    fn garbage_input_is_typed() {
        assert!(matches!(
            load_store_slice(b"GARBAGE DATA").unwrap_err(),
            PersistError::BadMagic { .. }
        ));
        assert!(matches!(load_store_slice(b"DB").unwrap_err(), PersistError::Corrupt(_)));
        assert!(matches!(load_store_slice(b"{oops").unwrap_err(), PersistError::Codec(_)));
    }
}
