//! Reverse-mode automatic differentiation over [`Tensor`]s.
//!
//! A [`Tape`] records a computation graph as operations execute; calling
//! [`Tape::backward`] walks the graph in reverse, accumulating gradients.
//! Gradients are dense except for embedding lookups, which produce
//! [`Grad::SparseRows`] so that large embedding matrices never materialize a
//! dense gradient (critical for the schema router's output vocabulary).
//!
//! Parameters live in a [`ParamStore`]; the tape
//! caches one leaf node per parameter and [`Tape::collect_grads`] moves the
//! accumulated gradients back into the store after a backward pass.

use std::collections::BTreeMap;

use crate::optim::{ParamId, ParamStore};
use crate::tensor::{log_softmax, Tensor};

/// Identifier of a value recorded on a [`Tape`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ValId(usize);

/// A gradient contribution flowing backward through the graph.
#[derive(Debug, Clone)]
pub enum Grad {
    /// Dense gradient with the same shape as the forward value.
    Dense(Tensor),
    /// Sparse row-wise gradient into a `[rows, cols]` matrix: only the listed
    /// rows carry gradient. Produced by embedding lookups.
    SparseRows { rows: usize, cols: usize, entries: Vec<(usize, Vec<f32>)> },
}

impl Grad {
    /// Materialize as a dense tensor.
    pub fn into_dense(self) -> Tensor {
        match self {
            Grad::Dense(t) => t,
            Grad::SparseRows { rows, cols, entries } => {
                let mut out = Tensor::zeros(rows, cols);
                let buf = out.as_mut_slice();
                for (r, row) in entries {
                    for (c, v) in row.iter().enumerate() {
                        buf[r * cols + c] += v;
                    }
                }
                out
            }
        }
    }

    /// Merge another contribution into this one.
    pub fn accumulate(&mut self, other: Grad) {
        match (&mut *self, other) {
            (Grad::Dense(a), Grad::Dense(b)) => a.add_scaled_assign(&b, 1.0),
            (Grad::SparseRows { entries, .. }, Grad::SparseRows { entries: more, .. }) => {
                // Coalesce by row index: an embedding row hit many times in
                // one graph (e.g. the output table at every decode step) must
                // not grow the entry list unboundedly.
                entries.extend(more);
                coalesce_rows(entries);
            }
            (dense @ Grad::Dense(_), sparse @ Grad::SparseRows { .. }) => {
                let s = sparse.into_dense();
                if let Grad::Dense(a) = dense {
                    a.add_scaled_assign(&s, 1.0);
                }
            }
            (sparse @ Grad::SparseRows { .. }, Grad::Dense(b)) => {
                let mut d =
                    std::mem::replace(sparse, Grad::Dense(Tensor::zeros(0, 0))).into_dense();
                d.add_scaled_assign(&b, 1.0);
                *sparse = Grad::Dense(d);
            }
        }
    }

    /// Multiply every gradient value by `s` in place (used when merging
    /// per-example shards into a batch-mean gradient).
    pub fn scale_in_place(&mut self, s: f32) {
        match self {
            Grad::Dense(t) => {
                for v in t.as_mut_slice() {
                    *v *= s;
                }
            }
            Grad::SparseRows { entries, .. } => {
                for (_, row) in entries {
                    for v in row {
                        *v *= s;
                    }
                }
            }
        }
    }
}

/// Sort entries by row index (stable, so same-row contributions keep their
/// arrival order) and sum duplicates into one entry per row.
fn coalesce_rows(entries: &mut Vec<(usize, Vec<f32>)>) {
    if entries.len() < 2 {
        return;
    }
    entries.sort_by_key(|(r, _)| *r);
    let mut write = 0;
    for read in 1..entries.len() {
        if entries[read].0 == entries[write].0 {
            let (head, tail) = entries.split_at_mut(read);
            for (a, v) in head[write].1.iter_mut().zip(&tail[0].1) {
                *a += v;
            }
        } else {
            write += 1;
            entries.swap(write, read);
        }
    }
    entries.truncate(write + 1);
}

/// Backward closures are `Send` so a whole [`Tape`] can live on a worker
/// thread (the data-parallel training loop builds one tape per shard).
type BackwardFn = Box<dyn Fn(&Tensor) -> Vec<(ValId, Grad)> + Send>;

struct Node {
    value: Tensor,
    grad: Option<Grad>,
    backward: Option<BackwardFn>,
    requires_grad: bool,
}

/// A recorded computation graph.
#[derive(Default)]
pub struct Tape {
    nodes: Vec<Node>,
    /// Ordered so gradient collection is deterministic (float addition
    /// order affects training bit-for-bit reproducibility).
    param_leaves: BTreeMap<ParamId, ValId>,
}

impl Tape {
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of recorded nodes (useful for tests and diagnostics).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    fn push(&mut self, value: Tensor, backward: Option<BackwardFn>, requires_grad: bool) -> ValId {
        self.nodes.push(Node { value, grad: None, backward, requires_grad });
        ValId(self.nodes.len() - 1)
    }

    /// Forward value of a node.
    pub fn value(&self, id: ValId) -> &Tensor {
        &self.nodes[id.0].value
    }

    /// A constant leaf: gradients are not tracked through it.
    pub fn constant(&mut self, t: Tensor) -> ValId {
        self.push(t, None, false)
    }

    /// A leaf that requires gradient but is not bound to a parameter store
    /// (used by tests and gradient checking).
    pub fn leaf(&mut self, t: Tensor) -> ValId {
        self.push(t, None, true)
    }

    /// Leaf bound to `store[param]`. Repeated calls with the same parameter on
    /// the same tape return the same node so gradients accumulate correctly.
    pub fn param(&mut self, store: &ParamStore, param: ParamId) -> ValId {
        if let Some(&id) = self.param_leaves.get(&param) {
            return id;
        }
        let id = self.push(store.value(param).clone(), None, true);
        self.param_leaves.insert(param, id);
        id
    }

    fn requires(&self, ids: &[ValId]) -> bool {
        ids.iter().any(|id| self.nodes[id.0].requires_grad)
    }

    /// Matrix product `a × b`.
    pub fn matmul(&mut self, a: ValId, b: ValId) -> ValId {
        let av = self.value(a).clone();
        let bv = self.value(b).clone();
        let out = av.matmul(&bv);
        let req = self.requires(&[a, b]);
        let back: Option<BackwardFn> = req.then(|| {
            Box::new(move |g: &Tensor| {
                vec![
                    (a, Grad::Dense(g.matmul(&bv.transpose()))),
                    (b, Grad::Dense(av.transpose().matmul(g))),
                ]
            }) as BackwardFn
        });
        self.push(out, back, req)
    }

    /// `a × bᵀ` without materializing the transpose in the graph.
    pub fn matmul_nt(&mut self, a: ValId, b: ValId) -> ValId {
        let av = self.value(a).clone();
        let bv = self.value(b).clone();
        let out = av.matmul(&bv.transpose());
        let req = self.requires(&[a, b]);
        let back: Option<BackwardFn> = req.then(|| {
            Box::new(move |g: &Tensor| {
                vec![(a, Grad::Dense(g.matmul(&bv))), (b, Grad::Dense(g.transpose().matmul(&av)))]
            }) as BackwardFn
        });
        self.push(out, back, req)
    }

    /// Element-wise sum; a single-row `b` broadcasts over the rows of `a`.
    pub fn add(&mut self, a: ValId, b: ValId) -> ValId {
        let av = self.value(a).clone();
        let bv = self.value(b).clone();
        let out = av.add(&bv);
        let req = self.requires(&[a, b]);
        let broadcast = bv.rows() == 1 && av.rows() > 1;
        let back: Option<BackwardFn> = req.then(|| {
            Box::new(move |g: &Tensor| {
                let gb = if broadcast { sum_rows(g) } else { g.clone() };
                vec![(a, Grad::Dense(g.clone())), (b, Grad::Dense(gb))]
            }) as BackwardFn
        });
        self.push(out, back, req)
    }

    /// Element-wise difference.
    pub fn sub(&mut self, a: ValId, b: ValId) -> ValId {
        let out = self.value(a).sub(self.value(b));
        let req = self.requires(&[a, b]);
        let back: Option<BackwardFn> = req.then(|| {
            Box::new(move |g: &Tensor| {
                vec![(a, Grad::Dense(g.clone())), (b, Grad::Dense(g.scale(-1.0)))]
            }) as BackwardFn
        });
        self.push(out, back, req)
    }

    /// Element-wise (Hadamard) product.
    pub fn mul_elem(&mut self, a: ValId, b: ValId) -> ValId {
        let av = self.value(a).clone();
        let bv = self.value(b).clone();
        let out = av.mul_elem(&bv);
        let req = self.requires(&[a, b]);
        let back: Option<BackwardFn> = req.then(|| {
            Box::new(move |g: &Tensor| {
                vec![(a, Grad::Dense(g.mul_elem(&bv))), (b, Grad::Dense(g.mul_elem(&av)))]
            }) as BackwardFn
        });
        self.push(out, back, req)
    }

    /// Multiply by a scalar constant.
    pub fn scale(&mut self, a: ValId, s: f32) -> ValId {
        let out = self.value(a).scale(s);
        let req = self.requires(&[a]);
        let back: Option<BackwardFn> = req
            .then(|| Box::new(move |g: &Tensor| vec![(a, Grad::Dense(g.scale(s)))]) as BackwardFn);
        self.push(out, back, req)
    }

    /// `1 - a`, element-wise (used by GRU gates).
    pub fn one_minus(&mut self, a: ValId) -> ValId {
        let out = self.value(a).map(|v| 1.0 - v);
        let req = self.requires(&[a]);
        let back: Option<BackwardFn> = req.then(|| {
            Box::new(move |g: &Tensor| vec![(a, Grad::Dense(g.scale(-1.0)))]) as BackwardFn
        });
        self.push(out, back, req)
    }

    pub fn tanh(&mut self, a: ValId) -> ValId {
        let out = self.value(a).tanh();
        let req = self.requires(&[a]);
        let y = out.clone();
        let back: Option<BackwardFn> = req.then(|| {
            Box::new(move |g: &Tensor| {
                let dy = y.map(|v| 1.0 - v * v);
                vec![(a, Grad::Dense(g.mul_elem(&dy)))]
            }) as BackwardFn
        });
        self.push(out, back, req)
    }

    pub fn sigmoid(&mut self, a: ValId) -> ValId {
        let out = self.value(a).sigmoid();
        let req = self.requires(&[a]);
        let y = out.clone();
        let back: Option<BackwardFn> = req.then(|| {
            Box::new(move |g: &Tensor| {
                let dy = y.map(|v| v * (1.0 - v));
                vec![(a, Grad::Dense(g.mul_elem(&dy)))]
            }) as BackwardFn
        });
        self.push(out, back, req)
    }

    pub fn relu(&mut self, a: ValId) -> ValId {
        let av = self.value(a).clone();
        let out = av.relu();
        let req = self.requires(&[a]);
        let back: Option<BackwardFn> = req.then(|| {
            Box::new(move |g: &Tensor| {
                let mask = av.map(|v| if v > 0.0 { 1.0 } else { 0.0 });
                vec![(a, Grad::Dense(g.mul_elem(&mask)))]
            }) as BackwardFn
        });
        self.push(out, back, req)
    }

    /// Horizontal concatenation.
    pub fn concat_cols(&mut self, a: ValId, b: ValId) -> ValId {
        let av = self.value(a).clone();
        let bv = self.value(b).clone();
        let out = av.concat_cols(&bv);
        let req = self.requires(&[a, b]);
        let (ac, bc) = (av.cols(), bv.cols());
        let rows = av.rows();
        let back: Option<BackwardFn> = req.then(|| {
            Box::new(move |g: &Tensor| {
                let mut ga = Tensor::zeros(rows, ac);
                let mut gb = Tensor::zeros(rows, bc);
                for r in 0..rows {
                    let grow = g.row(r);
                    ga.as_mut_slice()[r * ac..(r + 1) * ac].copy_from_slice(&grow[..ac]);
                    gb.as_mut_slice()[r * bc..(r + 1) * bc].copy_from_slice(&grow[ac..]);
                }
                vec![(a, Grad::Dense(ga)), (b, Grad::Dense(gb))]
            }) as BackwardFn
        });
        self.push(out, back, req)
    }

    /// Embedding lookup: gather `indices` rows of `emb`. The gradient to the
    /// embedding matrix is sparse.
    pub fn lookup(&mut self, emb: ValId, indices: &[usize]) -> ValId {
        let ev = self.value(emb).clone();
        let out = ev.lookup_rows(indices);
        let req = self.requires(&[emb]);
        let idx: Vec<usize> = indices.to_vec();
        let (rows, cols) = ev.shape();
        let back: Option<BackwardFn> = req.then(|| {
            Box::new(move |g: &Tensor| {
                let entries =
                    idx.iter().enumerate().map(|(i, &r)| (r, g.row(i).to_vec())).collect();
                vec![(emb, Grad::SparseRows { rows, cols, entries })]
            }) as BackwardFn
        });
        self.push(out, back, req)
    }

    /// Mean over rows `[m,n] → [1,n]`.
    pub fn mean_rows(&mut self, a: ValId) -> ValId {
        let av = self.value(a).clone();
        let out = av.mean_rows();
        let req = self.requires(&[a]);
        let (m, n) = av.shape();
        let back: Option<BackwardFn> = req.then(|| {
            Box::new(move |g: &Tensor| {
                let inv = if m == 0 { 0.0 } else { 1.0 / m as f32 };
                let mut ga = Tensor::zeros(m, n);
                let buf = ga.as_mut_slice();
                for r in 0..m {
                    for c in 0..n {
                        buf[r * n + c] = g.get(0, c) * inv;
                    }
                }
                vec![(a, Grad::Dense(ga))]
            }) as BackwardFn
        });
        self.push(out, back, req)
    }

    /// L2-normalize each row: `y = x / max(‖x‖, ε)`.
    pub fn l2_normalize(&mut self, a: ValId) -> ValId {
        const EPS: f32 = 1e-8;
        let av = self.value(a).clone();
        let (rows, cols) = av.shape();
        let mut out = av.clone();
        let mut norms = Vec::with_capacity(rows);
        {
            let buf = out.as_mut_slice();
            for r in 0..rows {
                let row = &mut buf[r * cols..(r + 1) * cols];
                let n = row.iter().map(|v| v * v).sum::<f32>().sqrt().max(EPS);
                for v in row.iter_mut() {
                    *v /= n;
                }
                norms.push(n);
            }
        }
        let req = self.requires(&[a]);
        let y = out.clone();
        let back: Option<BackwardFn> = req.then(|| {
            Box::new(move |g: &Tensor| {
                let mut ga = Tensor::zeros(rows, cols);
                let buf = ga.as_mut_slice();
                for r in 0..rows {
                    let yr = y.row(r);
                    let gr = g.row(r);
                    let dot: f32 = yr.iter().zip(gr).map(|(a, b)| a * b).sum();
                    for c in 0..cols {
                        buf[r * cols + c] = (gr[c] - yr[c] * dot) / norms[r];
                    }
                }
                vec![(a, Grad::Dense(ga))]
            }) as BackwardFn
        });
        self.push(out, back, req)
    }

    /// Stack single-row tensors into a matrix `[n, cols]`.
    pub fn stack_rows(&mut self, ids: &[ValId]) -> ValId {
        assert!(!ids.is_empty(), "stack_rows needs at least one row");
        let cols = self.value(ids[0]).cols();
        let mut data = Vec::with_capacity(ids.len() * cols);
        for &id in ids {
            let v = self.value(id);
            assert_eq!(v.rows(), 1, "stack_rows expects single-row inputs");
            assert_eq!(v.cols(), cols, "stack_rows width mismatch");
            data.extend_from_slice(v.as_slice());
        }
        let out = Tensor::from_vec(ids.len(), cols, data);
        let req = self.requires(ids);
        let ids_cloned: Vec<ValId> = ids.to_vec();
        let back: Option<BackwardFn> = req.then(|| {
            Box::new(move |g: &Tensor| {
                ids_cloned
                    .iter()
                    .enumerate()
                    .map(|(i, &id)| (id, Grad::Dense(Tensor::from_row(g.row(i).to_vec()))))
                    .collect()
            }) as BackwardFn
        });
        self.push(out, back, req)
    }

    /// Mean softmax cross-entropy over the rows of a logits matrix, one
    /// target class per row. Returns the scalar loss node.
    pub fn cross_entropy_rows(&mut self, logits: ValId, targets: &[usize]) -> ValId {
        let lv = self.value(logits).clone();
        assert_eq!(lv.rows(), targets.len(), "one target per logits row");
        let mut loss = 0.0f32;
        let mut probs = Vec::with_capacity(lv.rows() * lv.cols());
        for (r, &t) in targets.iter().enumerate() {
            assert!(t < lv.cols(), "target class out of range");
            let ls = log_softmax(lv.row(r));
            loss -= ls[t];
            probs.extend(ls.iter().map(|&v| v.exp()));
        }
        let n = targets.len() as f32;
        loss /= n;
        let req = self.requires(&[logits]);
        let targets_cloned: Vec<usize> = targets.to_vec();
        let (rows, cols) = lv.shape();
        let back: Option<BackwardFn> = req.then(|| {
            Box::new(move |g: &Tensor| {
                let scale = g.get(0, 0) / n;
                let mut grad = probs.clone();
                for (r, &t) in targets_cloned.iter().enumerate() {
                    grad[r * cols + t] -= 1.0;
                }
                for v in &mut grad {
                    *v *= scale;
                }
                vec![(logits, Grad::Dense(Tensor::from_vec(rows, cols, grad)))]
            }) as BackwardFn
        });
        self.push(Tensor::from_vec(1, 1, vec![loss]), back, req)
    }

    /// Softmax cross-entropy of a single-row logits tensor against a target
    /// class. Returns the scalar loss node (shape `[1,1]`).
    pub fn cross_entropy_logits(&mut self, logits: ValId, target: usize) -> ValId {
        let lv = self.value(logits).clone();
        assert_eq!(lv.rows(), 1, "cross_entropy_logits expects a single-row logits tensor");
        assert!(target < lv.cols(), "target class out of range");
        let ls = log_softmax(lv.row(0));
        let loss = -ls[target];
        let req = self.requires(&[logits]);
        let back: Option<BackwardFn> = req.then(|| {
            let probs: Vec<f32> = ls.iter().map(|&v| v.exp()).collect();
            Box::new(move |g: &Tensor| {
                let scale = g.get(0, 0);
                let mut grad = probs.clone();
                grad[target] -= 1.0;
                for v in &mut grad {
                    *v *= scale;
                }
                vec![(logits, Grad::Dense(Tensor::from_row(grad)))]
            }) as BackwardFn
        });
        self.push(Tensor::from_vec(1, 1, vec![loss]), back, req)
    }

    /// Sum a list of scalar nodes into one scalar (for batching losses).
    pub fn sum_scalars(&mut self, ids: &[ValId]) -> ValId {
        assert!(!ids.is_empty(), "sum_scalars needs at least one node");
        let mut acc = ids[0];
        for &id in &ids[1..] {
            acc = self.add(acc, id);
        }
        acc
    }

    /// Run backpropagation from a scalar node, seeding its gradient with 1.
    ///
    /// # Panics
    /// Panics if `loss` is not a `[1,1]` tensor.
    pub fn backward(&mut self, loss: ValId) {
        assert_eq!(self.nodes[loss.0].value.shape(), (1, 1), "backward expects a scalar loss");
        self.nodes[loss.0].grad = Some(Grad::Dense(Tensor::from_vec(1, 1, vec![1.0])));
        for i in (0..self.nodes.len()).rev() {
            if self.nodes[i].grad.is_none() || self.nodes[i].backward.is_none() {
                continue;
            }
            let grad = match self.nodes[i].grad.as_ref().unwrap() {
                Grad::Dense(t) => t.clone(),
                Grad::SparseRows { .. } => {
                    // Only leaves (embeddings) receive sparse gradients; they
                    // have no backward function, so this cannot be reached.
                    unreachable!("non-leaf node received a sparse gradient")
                }
            };
            let contribs = (self.nodes[i].backward.as_ref().unwrap())(&grad);
            for (pid, contrib) in contribs {
                if !self.nodes[pid.0].requires_grad {
                    continue;
                }
                match &mut self.nodes[pid.0].grad {
                    Some(g) => g.accumulate(contrib),
                    slot @ None => *slot = Some(contrib),
                }
            }
        }
    }

    /// Gradient of a node after [`Tape::backward`], densified.
    pub fn grad(&self, id: ValId) -> Option<Tensor> {
        self.nodes[id.0].grad.clone().map(Grad::into_dense)
    }

    /// Move all parameter-leaf gradients into the store (accumulating), then
    /// clear them from the tape.
    pub fn collect_grads(&mut self, store: &mut ParamStore) {
        for (&pid, &vid) in &self.param_leaves {
            if let Some(g) = self.nodes[vid.0].grad.take() {
                store.accumulate_grad(pid, g);
            }
        }
    }

    /// Drain parameter-leaf gradients into a shard, in ascending [`ParamId`]
    /// order. Worker threads return shards to the training loop, which
    /// merges them in fixed shard order via
    /// [`ParamStore::merge_grads`](crate::optim::ParamStore::merge_grads) —
    /// the combination is bit-identical at any thread count.
    pub fn take_grads(&mut self) -> crate::optim::GradShard {
        let mut out = Vec::with_capacity(self.param_leaves.len());
        for (&pid, &vid) in &self.param_leaves {
            if let Some(g) = self.nodes[vid.0].grad.take() {
                out.push((pid, g));
            }
        }
        out
    }
}

/// Column-wise sum of rows `[m,n] → [1,n]`.
fn sum_rows(t: &Tensor) -> Tensor {
    let mut out = vec![0.0f32; t.cols()];
    for r in 0..t.rows() {
        for (o, &v) in out.iter_mut().zip(t.row(r)) {
            *o += v;
        }
    }
    Tensor::from_row(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backward_through_matmul() {
        let mut tape = Tape::new();
        let a = tape.leaf(Tensor::from_vec(1, 2, vec![1.0, 2.0]));
        let b = tape.leaf(Tensor::from_vec(2, 1, vec![3.0, 4.0]));
        let c = tape.matmul(a, b); // scalar 11
        assert_eq!(tape.value(c).get(0, 0), 11.0);
        tape.backward(c);
        assert_eq!(tape.grad(a).unwrap().as_slice(), &[3.0, 4.0]);
        assert_eq!(tape.grad(b).unwrap().as_slice(), &[1.0, 2.0]);
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let mut tape = Tape::new();
        let a = tape.leaf(Tensor::from_vec(1, 3, vec![1.0, -1.0, 2.0]));
        let b = tape.leaf(Tensor::from_vec(2, 3, vec![0.5, 1.0, 0.0, 2.0, -1.0, 1.0]));
        let c = tape.matmul_nt(a, b);
        let expected = tape.value(a).matmul(&tape.value(b).transpose());
        assert!(tape.value(c).approx_eq(&expected, 1e-6));
    }

    #[test]
    fn broadcast_add_bias_grad_sums_rows() {
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec(3, 2, vec![1.0; 6]));
        let b = tape.leaf(Tensor::from_row(vec![0.5, -0.5]));
        let y = tape.add(x, b);
        // reduce to scalar: mean_rows then matmul with ones
        let m = tape.mean_rows(y);
        let ones = tape.constant(Tensor::from_vec(2, 1, vec![1.0, 1.0]));
        let s = tape.matmul(m, ones);
        tape.backward(s);
        // d s / d b = sum over rows of (1/3) = 1 per column
        let gb = tape.grad(b).unwrap();
        assert!(gb.approx_eq(&Tensor::from_row(vec![1.0, 1.0]), 1e-5));
    }

    #[test]
    fn lookup_produces_sparse_grad() {
        let mut tape = Tape::new();
        let emb = tape.leaf(Tensor::from_vec(4, 2, vec![0.0; 8]));
        let g = tape.lookup(emb, &[1, 3, 1]);
        let m = tape.mean_rows(g);
        let ones = tape.constant(Tensor::from_vec(2, 1, vec![1.0, 1.0]));
        let s = tape.matmul(m, ones);
        tape.backward(s);
        let ge = tape.grad(emb).unwrap();
        // rows 1 (twice) and 3 get 1/3 each per column
        assert!((ge.get(1, 0) - 2.0 / 3.0).abs() < 1e-5);
        assert!((ge.get(3, 0) - 1.0 / 3.0).abs() < 1e-5);
        assert_eq!(ge.get(0, 0), 0.0);
        assert_eq!(ge.get(2, 0), 0.0);
    }

    #[test]
    fn cross_entropy_grad_is_softmax_minus_onehot() {
        let mut tape = Tape::new();
        let logits = tape.leaf(Tensor::from_row(vec![1.0, 2.0, 3.0]));
        let loss = tape.cross_entropy_logits(logits, 2);
        tape.backward(loss);
        let g = tape.grad(logits).unwrap();
        let sm = Tensor::from_row(vec![1.0, 2.0, 3.0]).softmax_rows();
        assert!((g.get(0, 0) - sm.get(0, 0)).abs() < 1e-5);
        assert!((g.get(0, 2) - (sm.get(0, 2) - 1.0)).abs() < 1e-5);
    }

    #[test]
    fn loss_decreases_under_gd_on_tiny_regression() {
        // fit y = x * w with squared-error-like surrogate via two steps
        let mut w = Tensor::from_vec(1, 1, vec![0.0]);
        for _ in 0..50 {
            let mut tape = Tape::new();
            let wv = tape.leaf(w.clone());
            let x = tape.constant(Tensor::from_vec(1, 1, vec![2.0]));
            let y = tape.matmul(x, wv); // 2w
            let t = tape.constant(Tensor::from_vec(1, 1, vec![6.0]));
            let d = tape.sub(y, t);
            let sq = tape.mul_elem(d, d);
            tape.backward(sq);
            let g = tape.grad(wv).unwrap();
            w.add_scaled_assign(&g, -0.05);
        }
        assert!((w.get(0, 0) - 3.0).abs() < 0.05, "w={}", w.get(0, 0));
    }

    #[test]
    fn grads_accumulate_across_two_uses() {
        let mut tape = Tape::new();
        let a = tape.leaf(Tensor::from_vec(1, 1, vec![2.0]));
        let y = tape.mul_elem(a, a); // a^2, da = 2a = 4
        tape.backward(y);
        assert!((tape.grad(a).unwrap().get(0, 0) - 4.0).abs() < 1e-5);
    }

    #[test]
    fn l2_normalize_unit_norm_and_grad() {
        let mut tape = Tape::new();
        let a = tape.leaf(Tensor::from_row(vec![3.0, 4.0]));
        let n = tape.l2_normalize(a);
        assert!((tape.value(n).norm() - 1.0).abs() < 1e-6);
        assert!((tape.value(n).get(0, 0) - 0.6).abs() < 1e-6);
        // numeric gradient check on f = first component of normalized vec
        let pick = tape.constant(Tensor::from_vec(2, 1, vec![1.0, 0.0]));
        let f = tape.matmul(n, pick);
        tape.backward(f);
        let g = tape.grad(a).unwrap();
        // analytic: d(x/||x||)_0/dx = (e0 - y*y0)/||x|| = ([1,0]-0.6*[0.6,0.8])/5
        assert!((g.get(0, 0) - (1.0 - 0.36) / 5.0).abs() < 1e-5);
        assert!((g.get(0, 1) - (-0.48) / 5.0).abs() < 1e-5);
    }

    #[test]
    fn stack_rows_roundtrip_grads() {
        let mut tape = Tape::new();
        let a = tape.leaf(Tensor::from_row(vec![1.0, 2.0]));
        let b = tape.leaf(Tensor::from_row(vec![3.0, 4.0]));
        let m = tape.stack_rows(&[a, b]);
        assert_eq!(tape.value(m).shape(), (2, 2));
        let loss = tape.cross_entropy_rows(m, &[0, 1]);
        tape.backward(loss);
        let ga = tape.grad(a).unwrap();
        let gb = tape.grad(b).unwrap();
        // row softmax grads: (p - onehot)/2
        let p0 = Tensor::from_row(vec![1.0, 2.0]).softmax_rows();
        assert!((ga.get(0, 0) - (p0.get(0, 0) - 1.0) / 2.0).abs() < 1e-5);
        assert!(
            (gb.get(0, 1)
                - (Tensor::from_row(vec![3.0, 4.0]).softmax_rows().get(0, 1) - 1.0) / 2.0)
                .abs()
                < 1e-5
        );
    }

    #[test]
    fn cross_entropy_rows_matches_single_row_version() {
        let mut tape = Tape::new();
        let l = tape.leaf(Tensor::from_row(vec![0.2, -0.4, 1.0]));
        let multi = tape.cross_entropy_rows(l, &[2]);
        let mut tape2 = Tape::new();
        let l2 = tape2.leaf(Tensor::from_row(vec![0.2, -0.4, 1.0]));
        let single = tape2.cross_entropy_logits(l2, 2);
        assert!((tape.value(multi).get(0, 0) - tape2.value(single).get(0, 0)).abs() < 1e-6);
    }

    #[test]
    fn tape_and_grad_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<Tape>();
        assert_send::<Grad>();
    }

    #[test]
    fn sparse_accumulate_coalesces_rows() {
        let mut g = Grad::SparseRows {
            rows: 4,
            cols: 2,
            entries: vec![(2, vec![1.0, 2.0]), (0, vec![0.5, 0.5])],
        };
        g.accumulate(Grad::SparseRows {
            rows: 4,
            cols: 2,
            entries: vec![(2, vec![10.0, 20.0]), (3, vec![1.0, 1.0]), (2, vec![100.0, 200.0])],
        });
        let Grad::SparseRows { entries, .. } = &g else { panic!("stayed sparse") };
        assert_eq!(
            entries,
            &vec![(0, vec![0.5, 0.5]), (2, vec![111.0, 222.0]), (3, vec![1.0, 1.0]),],
            "one entry per row, sorted by row index"
        );
    }

    #[test]
    fn sparse_accumulate_stays_bounded() {
        // Regression: repeated accumulation onto the same rows must not grow
        // the entry list (it used to append unboundedly).
        let mut g = Grad::SparseRows { rows: 8, cols: 1, entries: vec![(1, vec![1.0])] };
        for _ in 0..100 {
            g.accumulate(Grad::SparseRows {
                rows: 8,
                cols: 1,
                entries: vec![(1, vec![1.0]), (5, vec![2.0])],
            });
        }
        let Grad::SparseRows { entries, .. } = &g else { panic!("stayed sparse") };
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0], (1, vec![101.0]));
        assert_eq!(entries[1], (5, vec![200.0]));
    }

    #[test]
    fn take_grads_orders_by_param_id_and_clears() {
        let mut store = ParamStore::new();
        let b = store.add("b", Tensor::zeros(1, 1));
        let a = store.add("a", Tensor::zeros(1, 1));
        let mut tape = Tape::new();
        // touch in reverse registration order: shard order must still be
        // ascending ParamId
        let av = tape.param(&store, a);
        let bv = tape.param(&store, b);
        let s = tape.mul_elem(av, bv);
        tape.backward(s);
        let shard = tape.take_grads();
        assert_eq!(shard.len(), 2);
        let ids: Vec<_> = shard.iter().map(|(pid, _)| *pid).collect();
        assert!(ids.windows(2).all(|w| w[0] < w[1]), "ascending ParamId order: {ids:?}");
        assert!(tape.take_grads().is_empty(), "grads drained");
    }

    #[test]
    fn constant_subgraphs_are_pruned() {
        let mut tape = Tape::new();
        let a = tape.constant(Tensor::from_vec(1, 1, vec![2.0]));
        let b = tape.constant(Tensor::from_vec(1, 1, vec![3.0]));
        let c = tape.mul_elem(a, b);
        tape.backward(c);
        assert!(tape.grad(a).is_none());
    }
}
