//! Finite-difference gradient checking.
//!
//! Used by the test suites of this crate and `dbcopilot-core` to validate
//! that every backward implementation matches the numerical derivative of the
//! corresponding forward pass.

use crate::optim::{ParamId, ParamStore};
use crate::tensor::Tensor;

/// Result of a gradient check for a single parameter.
#[derive(Debug)]
pub struct GradCheckReport {
    /// Largest absolute difference between analytic and numeric gradients.
    pub max_abs_err: f32,
    /// Largest relative difference (|a−n| / max(|a|,|n|,1e-3)).
    pub max_rel_err: f32,
}

/// Compare the analytic gradient of `param` (accumulated in `store` by
/// running `loss_fn` once) against central finite differences.
///
/// `loss_fn` must build a fresh tape, run backward, and call
/// `collect_grads` so gradients land in the store; it returns the scalar
/// loss. The store is left with zeroed gradients and the original values.
pub fn check_param(
    store: &mut ParamStore,
    param: ParamId,
    eps: f32,
    mut loss_fn: impl FnMut(&mut ParamStore) -> f32,
) -> GradCheckReport {
    store.zero_grads();
    let _ = loss_fn(store);
    let analytic = store
        .dense_grad(param)
        .unwrap_or_else(|| Tensor::zeros(store.value(param).rows(), store.value(param).cols()));
    store.zero_grads();

    let (rows, cols) = store.value(param).shape();
    let mut max_abs: f32 = 0.0;
    let mut max_rel: f32 = 0.0;
    for r in 0..rows {
        for c in 0..cols {
            let orig = store.value(param).get(r, c);
            store.value_mut(param).set(r, c, orig + eps);
            let up = loss_fn(store);
            store.zero_grads();
            store.value_mut(param).set(r, c, orig - eps);
            let down = loss_fn(store);
            store.zero_grads();
            store.value_mut(param).set(r, c, orig);

            let numeric = (up - down) / (2.0 * eps);
            let a = analytic.get(r, c);
            let abs = (a - numeric).abs();
            let rel = abs / a.abs().max(numeric.abs()).max(1e-3);
            max_abs = max_abs.max(abs);
            max_rel = max_rel.max(rel);
        }
    }
    GradCheckReport { max_abs_err: max_abs, max_rel_err: max_rel }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::seeded_rng;
    use crate::layers::{Embedding, GruCell, Linear};
    use crate::tape::Tape;

    fn scalar_loss(tape: &mut Tape, out: crate::tape::ValId, dim: usize) -> crate::tape::ValId {
        let ones = tape.constant(Tensor::from_vec(dim, 1, vec![1.0; dim]));
        let s = tape.matmul(out, ones);

        tape.mul_elem(s, s)
    }

    #[test]
    fn linear_gradcheck() {
        let mut rng = seeded_rng(23);
        let mut store = ParamStore::new();
        let lin = Linear::new(&mut store, "l", 3, 2, &mut rng);
        let x = Tensor::from_row(vec![0.3, -0.7, 1.1]);
        let run = |store: &mut ParamStore| {
            let mut tape = Tape::new();
            let xv = tape.constant(x.clone());
            let y = lin.forward(&mut tape, store, xv);
            let loss = scalar_loss(&mut tape, y, 2);
            tape.backward(loss);
            let v = tape.value(loss).get(0, 0);
            tape.collect_grads(store);
            v
        };
        for pid in [lin.w, lin.b] {
            let rep = check_param(&mut store, pid, 1e-2, run);
            assert!(rep.max_rel_err < 0.05, "linear rel err {}", rep.max_rel_err);
        }
    }

    #[test]
    fn gru_gradcheck() {
        let mut rng = seeded_rng(29);
        let mut store = ParamStore::new();
        let gru = GruCell::new(&mut store, "g", 2, 3, &mut rng);
        let x = Tensor::from_row(vec![0.5, -0.25]);
        let h0 = Tensor::from_row(vec![0.1, 0.0, -0.1]);
        let run = |store: &mut ParamStore| {
            let mut tape = Tape::new();
            let xv = tape.constant(x.clone());
            let hv = tape.constant(h0.clone());
            let h1 = gru.forward(&mut tape, store, xv, hv);
            let h2 = gru.forward(&mut tape, store, xv, h1); // two steps: reuse params
            let loss = scalar_loss(&mut tape, h2, 3);
            tape.backward(loss);
            let v = tape.value(loss).get(0, 0);
            tape.collect_grads(store);
            v
        };
        for pid in [gru.wz, gru.uz, gru.bz, gru.wr, gru.ur, gru.br, gru.wh, gru.uh, gru.bh] {
            let rep = check_param(&mut store, pid, 1e-2, run);
            assert!(rep.max_rel_err < 0.08, "gru rel err {} for {pid:?}", rep.max_rel_err);
        }
    }

    #[test]
    fn embedding_and_cross_entropy_gradcheck() {
        let mut rng = seeded_rng(31);
        let mut store = ParamStore::new();
        let emb = Embedding::new(&mut store, "e", 5, 3, &mut rng);
        let proj = Linear::new(&mut store, "p", 3, 4, &mut rng);
        let run = |store: &mut ParamStore| {
            let mut tape = Tape::new();
            let bag = emb.forward_bag(&mut tape, store, &[1, 4, 1]);
            let logits = proj.forward(&mut tape, store, bag);
            let loss = tape.cross_entropy_logits(logits, 2);
            tape.backward(loss);
            let v = tape.value(loss).get(0, 0);
            tape.collect_grads(store);
            v
        };
        for pid in [emb.weight, proj.w, proj.b] {
            let rep = check_param(&mut store, pid, 1e-2, run);
            assert!(rep.max_rel_err < 0.05, "emb rel err {} for {pid:?}", rep.max_rel_err);
        }
    }
}
