//! `dbcopilot-nn` — the neural substrate for the DBCopilot reproduction.
//!
//! The paper's schema router is a T5-base differentiable search index; this
//! crate provides the minimal machinery to train an equivalent (much smaller)
//! seq2seq model from scratch, offline, in pure Rust:
//!
//! * [`tensor::Tensor`] — dense row-major `f32` matrices with cheap clones;
//! * [`tape::Tape`] — reverse-mode autodiff with sparse embedding gradients;
//! * [`layers`] — `Linear`, `Embedding`, `GruCell`, each with a tape-free
//!   inference path for beam search;
//! * [`optim`] — `ParamStore`, `AdamW` (lazy sparse updates), `Sgd`;
//! * [`init`] — seeded Xavier initialization;
//! * [`gradcheck`] — finite-difference validation used across the workspace;
//! * [`quant`] — read-only per-row i8 quantization of a frozen `ParamStore`
//!   with i32-accumulating dot/matvec kernels for the serving hot path;
//! * [`codec`] — the `DBC1` binary container (compact, versioned, bit-exact);
//! * [`serialize`] — persistence entry points: binary by default, JSON behind
//!   a [`serialize::Format::Json`] escape hatch (also measures index size).
//!
//! ```
//! use dbcopilot_nn::tensor::Tensor;
//!
//! let t = Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
//! assert_eq!(t.shape(), (2, 2));
//! assert_eq!(t.get(1, 0), 3.0);
//! ```

pub mod codec;
pub mod gradcheck;
pub mod init;
pub mod layers;
pub mod optim;
pub mod quant;
pub mod serialize;
pub mod tape;
pub mod tensor;

pub use layers::{Embedding, GruCell, Linear};
pub use optim::{AdamW, GradShard, ParamId, ParamStore, Sgd};
pub use quant::{QuantEntry, QuantizedMatrix, QuantizedStore, QuantizedVec};
pub use tape::{Grad, Tape, ValId};
pub use tensor::Tensor;
