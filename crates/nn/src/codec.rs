//! `DBC1` — the compact, versioned binary codec behind all persistence.
//!
//! The paper's Table 5 compares methods on index *disk size*, and its §6
//! dynamic-schema-update story depends on saving and reloading routers
//! instead of retraining — so the serialized index is a product, not a
//! debugging artifact. This module defines the on-disk container every
//! persistence path goes through:
//!
//! ```text
//! offset 0  magic    b"DBC1"
//! offset 4  version  u16 LE (currently 1)
//! offset 6  count    u16 LE (number of sections)
//! then, per section:
//!           tag      [u8; 4]     (e.g. b"PARM", b"VOCB")
//!           len      u64 LE      (payload byte length)
//!           payload  len bytes
//! ```
//!
//! Everything is little-endian and length-prefixed; `f32` weights are stored
//! as raw bits (`to_le_bytes`), so every bit pattern — including NaN
//! payloads, infinities and negative zero — survives a save→load round trip
//! exactly. Decoding validates magic, version, section framing and tensor
//! shapes, returning typed [`PersistError`]s in release builds (never a
//! `debug_assert!`).
//!
//! The parameter-store section (`PARM`) payload is:
//!
//! ```text
//! u32 param_count
//! per parameter, in registration (ParamId) order:
//!   u32 name_len, name (UTF-8)
//!   u32 rows, u32 cols
//!   rows * cols × f32 (raw LE bits)
//! ```

use crate::optim::ParamStore;
use crate::quant::{QuantEntry, QuantizedMatrix, QuantizedStore};
use crate::serialize::PersistError;
use crate::tensor::Tensor;

/// File magic: the first four bytes of every binary artifact.
pub const MAGIC: [u8; 4] = *b"DBC1";

/// Current (and only) container version.
pub const VERSION: u16 = 1;

/// Section tag for a [`ParamStore`] payload.
pub const SEC_PARAMS: [u8; 4] = *b"PARM";

/// Section tag for a frozen [`QuantizedStore`] payload (optional: bundles
/// written before quantization existed simply lack it).
pub const SEC_QUANT: [u8; 4] = *b"QNT8";

/// One tagged, length-prefixed payload inside a `DBC1` container.
///
/// Payload bytes are [`Cow`](std::borrow::Cow): encoders hand over owned
/// buffers, while [`decode_container`] borrows straight from the input so
/// multi-megabyte weight sections are not copied an extra time per load.
pub struct Section<'a> {
    pub tag: [u8; 4],
    pub bytes: std::borrow::Cow<'a, [u8]>,
}

impl<'a> Section<'a> {
    pub fn new(tag: [u8; 4], bytes: Vec<u8>) -> Self {
        Section { tag, bytes: std::borrow::Cow::Owned(bytes) }
    }

    pub fn borrowed(tag: [u8; 4], bytes: &'a [u8]) -> Self {
        Section { tag, bytes: std::borrow::Cow::Borrowed(bytes) }
    }
}

// ---------------------------------------------------------------------------
// container framing
// ---------------------------------------------------------------------------

/// Exact encoded length of a container holding payloads of the given sizes.
pub fn container_len(payload_lens: &[usize]) -> usize {
    8 + payload_lens.iter().map(|l| 12 + l).sum::<usize>()
}

/// Encode sections into a `DBC1` container.
///
/// # Panics
/// Panics if there are more than `u16::MAX` sections (a caller bug; real
/// containers hold a handful).
pub fn encode_container(sections: &[Section<'_>]) -> Vec<u8> {
    let cap = container_len(&sections.iter().map(|s| s.bytes.len()).collect::<Vec<_>>());
    let mut out = Vec::with_capacity(cap);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    let count = u16::try_from(sections.len()).expect("too many sections");
    out.extend_from_slice(&count.to_le_bytes());
    for s in sections {
        out.extend_from_slice(&s.tag);
        out.extend_from_slice(&(s.bytes.len() as u64).to_le_bytes());
        out.extend_from_slice(&s.bytes);
    }
    debug_assert_eq!(out.len(), cap);
    out
}

/// Decode a `DBC1` container, validating magic, version, section framing and
/// the absence of trailing bytes.
pub fn decode_container(bytes: &[u8]) -> Result<Vec<Section<'_>>, PersistError> {
    let mut r = Reader::new(bytes);
    let magic = r.take_array::<4>("magic")?;
    if magic != MAGIC {
        return Err(PersistError::BadMagic { found: magic });
    }
    let version = r.take_u16("version")?;
    if version != VERSION {
        return Err(PersistError::UnsupportedVersion { found: version, supported: VERSION });
    }
    let count = r.take_u16("section count")? as usize;
    let mut sections = Vec::with_capacity(count);
    for i in 0..count {
        let tag = r.take_array::<4>("section tag")?;
        let len = r.take_u64("section length")?;
        let len = usize::try_from(len)
            .map_err(|_| PersistError::Corrupt(format!("section {i} length overflows usize")))?;
        let payload = r.take_bytes(len, "section payload")?;
        sections.push(Section::borrowed(tag, payload));
    }
    r.expect_end()?;
    Ok(sections)
}

/// Find the unique section with `tag`; duplicates and absence are corruption.
pub fn require_section<'a, 'b>(
    sections: &'b [Section<'a>],
    tag: [u8; 4],
) -> Result<&'b Section<'a>, PersistError> {
    let mut found = None;
    for s in sections {
        if s.tag == tag {
            if found.is_some() {
                return Err(PersistError::Corrupt(format!(
                    "duplicate {:?} section",
                    String::from_utf8_lossy(&tag)
                )));
            }
            found = Some(s);
        }
    }
    found.ok_or_else(|| {
        PersistError::Corrupt(format!("missing {:?} section", String::from_utf8_lossy(&tag)))
    })
}

/// Find an *optional* section with `tag`: `Ok(None)` when absent (older
/// files), but duplicates are still corruption.
pub fn find_section<'a, 'b>(
    sections: &'b [Section<'a>],
    tag: [u8; 4],
) -> Result<Option<&'b Section<'a>>, PersistError> {
    let mut found = None;
    for s in sections {
        if s.tag == tag {
            if found.is_some() {
                return Err(PersistError::Corrupt(format!(
                    "duplicate {:?} section",
                    String::from_utf8_lossy(&tag)
                )));
            }
            found = Some(s);
        }
    }
    Ok(found)
}

// ---------------------------------------------------------------------------
// ParamStore section
// ---------------------------------------------------------------------------

/// Exact byte length of the `PARM` section payload for `store`.
pub fn store_section_len(store: &ParamStore) -> usize {
    4 + store.iter_values().map(|(name, value)| 4 + name.len() + 8 + 4 * value.len()).sum::<usize>()
}

/// Encode a store into a `PARM` section payload (weights as raw `f32` bits).
pub fn encode_store_section(store: &ParamStore) -> Vec<u8> {
    let mut out = Vec::with_capacity(store_section_len(store));
    out.extend_from_slice(&(store.len() as u32).to_le_bytes());
    for (name, value) in store.iter_values() {
        out.extend_from_slice(&(name.len() as u32).to_le_bytes());
        out.extend_from_slice(name.as_bytes());
        out.extend_from_slice(&(value.rows() as u32).to_le_bytes());
        out.extend_from_slice(&(value.cols() as u32).to_le_bytes());
        for &v in value.as_slice() {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }
    debug_assert_eq!(out.len(), store_section_len(store));
    out
}

/// Decode a `PARM` section payload, validating names and shapes.
pub fn decode_store_section(bytes: &[u8]) -> Result<ParamStore, PersistError> {
    let mut r = Reader::new(bytes);
    let count = r.take_u32("param count")? as usize;
    let mut store = ParamStore::new();
    for i in 0..count {
        let name_len = r.take_u32("param name length")? as usize;
        let name_bytes = r.take_bytes(name_len, "param name")?;
        let name = std::str::from_utf8(name_bytes)
            .map_err(|_| PersistError::Corrupt(format!("param {i} name is not UTF-8")))?
            .to_string();
        let rows = r.take_u32("tensor rows")? as usize;
        let cols = r.take_u32("tensor cols")? as usize;
        let byte_len = rows.checked_mul(cols).and_then(|n| n.checked_mul(4)).ok_or_else(|| {
            PersistError::Corrupt(format!("param {name:?} shape {rows}x{cols} overflows"))
        })?;
        // bytes are proven present before any shape-sized allocation, so a
        // crafted huge shape fails as truncation, not as an aborting
        // capacity-overflow panic
        let raw = r.take_bytes(byte_len, "tensor data")?;
        let n = byte_len / 4;
        let mut data = Vec::with_capacity(n);
        for chunk in raw.chunks_exact(4) {
            data.push(f32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]));
        }
        if store.id_of(&name).is_some() {
            return Err(PersistError::Corrupt(format!("duplicate param name {name:?}")));
        }
        store.add(name, Tensor::from_vec(rows, cols, data));
    }
    r.expect_end()?;
    Ok(store)
}

/// Exact on-disk size of a store saved alone in a `DBC1` container.
pub fn encoded_store_len(store: &ParamStore) -> usize {
    container_len(&[store_section_len(store)])
}

/// Encode a store as a standalone single-section `DBC1` container.
pub fn encode_store(store: &ParamStore) -> Vec<u8> {
    encode_container(&[Section::new(SEC_PARAMS, encode_store_section(store))])
}

/// Decode a standalone store container.
pub fn decode_store(bytes: &[u8]) -> Result<ParamStore, PersistError> {
    let sections = decode_container(bytes)?;
    let parm = require_section(&sections, SEC_PARAMS)?;
    decode_store_section(&parm.bytes)
}

// ---------------------------------------------------------------------------
// QuantizedStore section
// ---------------------------------------------------------------------------
//
// The `QNT8` payload mirrors `PARM` with an orientation flag and split
// scale/code buffers, so quantized bundles load with zero re-quantization:
//
// ```text
// u32 entry_count
// per entry, in registration (ParamId) order:
//   u32 name_len, name (UTF-8)
//   u8  flags          (bit 0 = stored transposed; other bits must be 0)
//   u32 rows, u32 cols (of the *quantized* layout)
//   rows × f32         (per-row scales, raw LE bits)
//   rows * cols × i8   (codes)
// ```

const QUANT_FLAG_TRANSPOSED: u8 = 1;

/// Exact byte length of the `QNT8` section payload for `qs`.
pub fn quant_section_len(qs: &QuantizedStore) -> usize {
    4 + qs
        .entries()
        .iter()
        .map(|e| 4 + e.name.len() + 1 + 8 + 4 * e.matrix.rows() + e.matrix.data().len())
        .sum::<usize>()
}

/// Encode a frozen quantized store into a `QNT8` section payload. Scales are
/// written as raw `f32` bits, so the round trip is bit-exact.
pub fn encode_quant_section(qs: &QuantizedStore) -> Vec<u8> {
    let mut out = Vec::with_capacity(quant_section_len(qs));
    out.extend_from_slice(&(qs.len() as u32).to_le_bytes());
    for e in qs.entries() {
        out.extend_from_slice(&(e.name.len() as u32).to_le_bytes());
        out.extend_from_slice(e.name.as_bytes());
        out.push(if e.transposed { QUANT_FLAG_TRANSPOSED } else { 0 });
        out.extend_from_slice(&(e.matrix.rows() as u32).to_le_bytes());
        out.extend_from_slice(&(e.matrix.cols() as u32).to_le_bytes());
        for &s in e.matrix.scales() {
            out.extend_from_slice(&s.to_le_bytes());
        }
        out.extend(e.matrix.data().iter().map(|&q| q as u8));
    }
    debug_assert_eq!(out.len(), quant_section_len(qs));
    out
}

/// Decode a `QNT8` section payload, validating names, flags and shapes.
pub fn decode_quant_section(bytes: &[u8]) -> Result<QuantizedStore, PersistError> {
    let mut r = Reader::new(bytes);
    let count = r.take_u32("quant entry count")? as usize;
    let mut entries: Vec<QuantEntry> = Vec::new();
    for i in 0..count {
        let name_len = r.take_u32("quant name length")? as usize;
        let name_bytes = r.take_bytes(name_len, "quant name")?;
        let name = std::str::from_utf8(name_bytes)
            .map_err(|_| PersistError::Corrupt(format!("quant entry {i} name is not UTF-8")))?
            .to_string();
        let flags = r.take_array::<1>("quant flags")?[0];
        if flags & !QUANT_FLAG_TRANSPOSED != 0 {
            return Err(PersistError::Corrupt(format!(
                "quant entry {name:?} has unknown flags {flags:#04x}"
            )));
        }
        let rows = r.take_u32("quant rows")? as usize;
        let cols = r.take_u32("quant cols")? as usize;
        let code_len = rows.checked_mul(cols).ok_or_else(|| {
            PersistError::Corrupt(format!("quant entry {name:?} shape {rows}x{cols} overflows"))
        })?;
        // as in `decode_store_section`: prove the bytes exist before any
        // shape-sized allocation, so crafted shapes fail as truncation
        let raw_scales = r.take_bytes(
            rows.checked_mul(4).ok_or_else(|| {
                PersistError::Corrupt(format!("quant entry {name:?} scale bytes overflow"))
            })?,
            "quant scales",
        )?;
        let raw_codes = r.take_bytes(code_len, "quant codes")?;
        let mut scales = Vec::with_capacity(rows);
        for chunk in raw_scales.chunks_exact(4) {
            scales.push(f32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]));
        }
        let data: Vec<i8> = raw_codes.iter().map(|&b| b as i8).collect();
        if entries.iter().any(|e| e.name == name) {
            return Err(PersistError::Corrupt(format!("duplicate quant entry name {name:?}")));
        }
        entries.push(QuantEntry {
            name,
            transposed: flags & QUANT_FLAG_TRANSPOSED != 0,
            matrix: QuantizedMatrix::from_raw(rows, cols, scales, data),
        });
    }
    r.expect_end()?;
    Ok(QuantizedStore::from_entries(entries))
}

// ---------------------------------------------------------------------------
// bounded reader
// ---------------------------------------------------------------------------

/// A bounds-checked cursor over a byte slice; every read names what it was
/// reading so truncation errors say which field the file ran out in.
pub struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    fn truncated(&self, what: &str, need: usize) -> PersistError {
        PersistError::Corrupt(format!(
            "truncated file: {what} needs {need} bytes at offset {} but only {} remain",
            self.pos,
            self.bytes.len() - self.pos
        ))
    }

    pub fn take_bytes(&mut self, n: usize, what: &str) -> Result<&'a [u8], PersistError> {
        if self.bytes.len() - self.pos < n {
            return Err(self.truncated(what, n));
        }
        let out = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    pub fn take_array<const N: usize>(&mut self, what: &str) -> Result<[u8; N], PersistError> {
        let b = self.take_bytes(N, what)?;
        let mut out = [0u8; N];
        out.copy_from_slice(b);
        Ok(out)
    }

    pub fn take_u16(&mut self, what: &str) -> Result<u16, PersistError> {
        Ok(u16::from_le_bytes(self.take_array::<2>(what)?))
    }

    pub fn take_u32(&mut self, what: &str) -> Result<u32, PersistError> {
        Ok(u32::from_le_bytes(self.take_array::<4>(what)?))
    }

    pub fn take_u64(&mut self, what: &str) -> Result<u64, PersistError> {
        Ok(u64::from_le_bytes(self.take_array::<8>(what)?))
    }

    /// Whether every byte has been consumed — lets readers accept files
    /// written before an optional trailing field existed.
    pub fn at_end(&self) -> bool {
        self.pos == self.bytes.len()
    }

    /// Fail unless every byte has been consumed (catches foreign data glued
    /// onto a valid file, and framing bugs).
    pub fn expect_end(&self) -> Result<(), PersistError> {
        if self.pos != self.bytes.len() {
            return Err(PersistError::Corrupt(format!(
                "{} trailing bytes after offset {}",
                self.bytes.len() - self.pos,
                self.pos
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::{seeded_rng, xavier_uniform};

    fn sample_store() -> ParamStore {
        let mut rng = seeded_rng(3);
        let mut store = ParamStore::new();
        store.add("w", xavier_uniform(4, 3, &mut rng));
        store.add("emb.weight", xavier_uniform(7, 2, &mut rng));
        store
    }

    #[test]
    fn store_roundtrip_is_bit_exact() {
        let store = sample_store();
        let bytes = encode_store(&store);
        assert_eq!(bytes.len(), encoded_store_len(&store));
        let loaded = decode_store(&bytes).unwrap();
        assert_eq!(loaded.len(), store.len());
        for ((an, av), (bn, bv)) in store.iter_values().zip(loaded.iter_values()) {
            assert_eq!(an, bn);
            assert_eq!(av.shape(), bv.shape());
            for (x, y) in av.as_slice().iter().zip(bv.as_slice()) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn non_finite_bits_survive() {
        let mut store = ParamStore::new();
        store.add(
            "weird",
            Tensor::from_row(vec![
                f32::NAN,
                f32::INFINITY,
                f32::NEG_INFINITY,
                -0.0,
                f32::from_bits(0x7fc0_dead), // NaN with payload
                f32::MIN_POSITIVE / 2.0,     // subnormal
            ]),
        );
        let loaded = decode_store(&encode_store(&store)).unwrap();
        let id = loaded.id_of("weird").unwrap();
        let (orig, back) = (store.value(store.id_of("weird").unwrap()), loaded.value(id));
        for (x, y) in orig.as_slice().iter().zip(back.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn bad_magic_is_typed() {
        let mut bytes = encode_store(&sample_store());
        bytes[0] = b'X';
        match decode_store(&bytes) {
            Err(PersistError::BadMagic { found }) => assert_eq!(&found, b"XBC1"),
            other => panic!("expected BadMagic, got {other:?}"),
        }
    }

    #[test]
    fn future_version_is_typed() {
        let mut bytes = encode_store(&sample_store());
        bytes[4..6].copy_from_slice(&2u16.to_le_bytes());
        match decode_store(&bytes) {
            Err(PersistError::UnsupportedVersion { found: 2, supported: 1 }) => {}
            other => panic!("expected UnsupportedVersion, got {other:?}"),
        }
    }

    #[test]
    fn every_truncation_errors_without_panic() {
        let bytes = encode_store(&sample_store());
        for cut in 0..bytes.len() {
            assert!(decode_store(&bytes[..cut]).is_err(), "prefix of {cut} bytes must fail");
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = encode_store(&sample_store());
        bytes.push(0);
        match decode_store(&bytes) {
            Err(PersistError::Corrupt(msg)) => assert!(msg.contains("trailing"), "{msg}"),
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn oversized_section_length_rejected() {
        let mut bytes = encode_store(&sample_store());
        // section length field sits right after magic+version+count+tag
        bytes[12..20].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(decode_store(&bytes), Err(PersistError::Corrupt(_))));
    }

    #[test]
    fn crafted_huge_shape_is_corrupt_not_capacity_panic() {
        // rows * cols fits in usize but * 4 overflows: must be Corrupt
        let mut payload = 1u32.to_le_bytes().to_vec(); // one param
        payload.extend_from_slice(&1u32.to_le_bytes()); // name len
        payload.push(b'w');
        payload.extend_from_slice(&0x8000_0000u32.to_le_bytes()); // rows
        payload.extend_from_slice(&0x8000_0000u32.to_le_bytes()); // cols
        let bytes = encode_container(&[Section::new(SEC_PARAMS, payload.clone())]);
        match decode_store(&bytes) {
            Err(PersistError::Corrupt(msg)) => assert!(msg.contains("overflows"), "{msg}"),
            other => panic!("expected Corrupt, got {other:?}"),
        }

        // a huge-but-representable shape must fail as truncation before any
        // shape-sized allocation is attempted
        let mut payload = 1u32.to_le_bytes().to_vec();
        payload.extend_from_slice(&1u32.to_le_bytes());
        payload.push(b'w');
        payload.extend_from_slice(&0x00ff_ffffu32.to_le_bytes());
        payload.extend_from_slice(&0x00ff_ffffu32.to_le_bytes());
        let bytes = encode_container(&[Section::new(SEC_PARAMS, payload)]);
        match decode_store(&bytes) {
            Err(PersistError::Corrupt(msg)) => assert!(msg.contains("truncated"), "{msg}"),
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn duplicate_param_names_rejected() {
        let store = {
            let mut s = ParamStore::new();
            s.add("dup", Tensor::zeros(1, 1));
            s
        };
        let mut section = encode_store_section(&store);
        // splice the single-param payload in twice with count=2
        let param_bytes = section.split_off(4);
        let mut payload = 2u32.to_le_bytes().to_vec();
        payload.extend_from_slice(&param_bytes);
        payload.extend_from_slice(&param_bytes);
        let bytes = encode_container(&[Section::new(SEC_PARAMS, payload)]);
        match decode_store(&bytes) {
            Err(PersistError::Corrupt(msg)) => assert!(msg.contains("duplicate"), "{msg}"),
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn missing_section_rejected() {
        let bytes = encode_container(&[Section::new(*b"XXXX", vec![1, 2, 3])]);
        match decode_store(&bytes) {
            Err(PersistError::Corrupt(msg)) => assert!(msg.contains("missing"), "{msg}"),
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    // -- QNT8 section (mirrors the PARM suite) --

    fn sample_quant() -> QuantizedStore {
        QuantizedStore::freeze(&sample_store(), |name| name == "w")
    }

    #[test]
    fn quant_roundtrip_is_bit_exact() {
        let qs = sample_quant();
        let payload = encode_quant_section(&qs);
        assert_eq!(payload.len(), quant_section_len(&qs));
        let loaded = decode_quant_section(&payload).unwrap();
        assert_eq!(loaded.len(), qs.len());
        for (a, b) in qs.entries().iter().zip(loaded.entries()) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.transposed, b.transposed);
            assert_eq!(a.matrix.data(), b.matrix.data());
            for (x, y) in a.matrix.scales().iter().zip(b.matrix.scales()) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn quant_every_truncation_errors_without_panic() {
        let payload = encode_quant_section(&sample_quant());
        for cut in 0..payload.len() {
            assert!(
                decode_quant_section(&payload[..cut]).is_err(),
                "prefix of {cut} bytes must fail"
            );
        }
    }

    #[test]
    fn quant_duplicate_section_rejected() {
        let payload = encode_quant_section(&sample_quant());
        let bytes = encode_container(&[
            Section::new(SEC_QUANT, payload.clone()),
            Section::new(SEC_QUANT, payload),
        ]);
        let sections = decode_container(&bytes).unwrap();
        match find_section(&sections, SEC_QUANT) {
            Err(PersistError::Corrupt(msg)) => assert!(msg.contains("duplicate"), "{msg}"),
            Err(other) => panic!("expected Corrupt, got {other:?}"),
            Ok(_) => panic!("duplicate QNT8 must be rejected"),
        }
    }

    #[test]
    fn quant_section_is_optional() {
        // A pre-QNT8 container simply has no QNT8 section: not an error.
        let bytes = encode_store(&sample_store());
        let sections = decode_container(&bytes).unwrap();
        assert!(find_section(&sections, SEC_QUANT).unwrap().is_none());
    }

    #[test]
    fn quant_unknown_flags_rejected() {
        let mut payload = encode_quant_section(&sample_quant());
        // flags byte of the first entry sits after count + name_len + "w"
        let flags_at = 4 + 4 + 1;
        payload[flags_at] = 0x82;
        match decode_quant_section(&payload) {
            Err(PersistError::Corrupt(msg)) => assert!(msg.contains("flags"), "{msg}"),
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn quant_duplicate_entry_names_rejected() {
        let mut store = ParamStore::new();
        store.add("dup", Tensor::from_row(vec![1.0, -1.0]));
        let qs = QuantizedStore::freeze(&store, |_| false);
        let mut section = encode_quant_section(&qs);
        let entry_bytes = section.split_off(4);
        let mut payload = 2u32.to_le_bytes().to_vec();
        payload.extend_from_slice(&entry_bytes);
        payload.extend_from_slice(&entry_bytes);
        match decode_quant_section(&payload) {
            Err(PersistError::Corrupt(msg)) => assert!(msg.contains("duplicate"), "{msg}"),
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn quant_crafted_huge_shape_is_corrupt_not_capacity_panic() {
        let mut payload = 1u32.to_le_bytes().to_vec(); // one entry
        payload.extend_from_slice(&1u32.to_le_bytes()); // name len
        payload.push(b'w');
        payload.push(0); // flags
        payload.extend_from_slice(&0xffff_ffffu32.to_le_bytes()); // rows
        payload.extend_from_slice(&0xffff_ffffu32.to_le_bytes()); // cols
        match decode_quant_section(&payload) {
            Err(PersistError::Corrupt(msg)) => {
                assert!(msg.contains("overflows") || msg.contains("truncated"), "{msg}")
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }
}
