//! Reusable model layers.
//!
//! Each layer owns [`ParamId`]s into a shared [`ParamStore`] and exposes two
//! paths:
//! * `forward` — records onto a [`Tape`] for training;
//! * `infer` — plain tensor math with no tape overhead, used by beam search
//!   and the retrieval baselines at query time.

use rand::rngs::SmallRng;
use serde::{Deserialize, Serialize};

use crate::init::xavier_uniform;
use crate::optim::{ParamId, ParamStore};
use crate::tape::{Tape, ValId};
use crate::tensor::Tensor;

/// Fully connected layer `y = x·W + b`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Linear {
    pub w: ParamId,
    pub b: ParamId,
    pub in_dim: usize,
    pub out_dim: usize,
}

impl Linear {
    pub fn new(
        store: &mut ParamStore,
        prefix: &str,
        in_dim: usize,
        out_dim: usize,
        rng: &mut SmallRng,
    ) -> Self {
        let w = store.add(format!("{prefix}.w"), xavier_uniform(in_dim, out_dim, rng));
        let b = store.add(format!("{prefix}.b"), Tensor::zeros(1, out_dim));
        Linear { w, b, in_dim, out_dim }
    }

    pub fn forward(&self, tape: &mut Tape, store: &ParamStore, x: ValId) -> ValId {
        let w = tape.param(store, self.w);
        let b = tape.param(store, self.b);
        let xw = tape.matmul(x, w);
        tape.add(xw, b)
    }

    pub fn infer(&self, store: &ParamStore, x: &Tensor) -> Tensor {
        x.matmul(store.value(self.w)).add(store.value(self.b))
    }
}

/// Embedding table `[vocab, dim]` with mean-pooled bag lookup.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Embedding {
    pub weight: ParamId,
    pub vocab: usize,
    pub dim: usize,
}

impl Embedding {
    pub fn new(
        store: &mut ParamStore,
        prefix: &str,
        vocab: usize,
        dim: usize,
        rng: &mut SmallRng,
    ) -> Self {
        let weight = store.add(format!("{prefix}.weight"), xavier_uniform(vocab, dim, rng));
        Embedding { weight, vocab, dim }
    }

    /// Gather rows for `indices` → `[indices.len(), dim]`.
    pub fn forward(&self, tape: &mut Tape, store: &ParamStore, indices: &[usize]) -> ValId {
        let w = tape.param(store, self.weight);
        tape.lookup(w, indices)
    }

    /// Mean of the embeddings of `indices` → `[1, dim]` (a bag-of-words
    /// encoder). An empty bag yields the zero vector.
    pub fn forward_bag(&self, tape: &mut Tape, store: &ParamStore, indices: &[usize]) -> ValId {
        if indices.is_empty() {
            return tape.constant(Tensor::zeros(1, self.dim));
        }
        let rows = self.forward(tape, store, indices);
        tape.mean_rows(rows)
    }

    pub fn infer(&self, store: &ParamStore, indices: &[usize]) -> Tensor {
        store.value(self.weight).lookup_rows(indices)
    }

    pub fn infer_bag(&self, store: &ParamStore, indices: &[usize]) -> Tensor {
        if indices.is_empty() {
            return Tensor::zeros(1, self.dim);
        }
        self.infer(store, indices).mean_rows()
    }
}

/// Gated recurrent unit cell (Cho et al., 2014).
///
/// `z = σ(x·Wz + h·Uz + bz)`, `r = σ(x·Wr + h·Ur + br)`,
/// `h̃ = tanh(x·Wh + (r⊙h)·Uh + bh)`, `h' = (1−z)⊙h + z⊙h̃`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GruCell {
    pub wz: ParamId,
    pub uz: ParamId,
    pub bz: ParamId,
    pub wr: ParamId,
    pub ur: ParamId,
    pub br: ParamId,
    pub wh: ParamId,
    pub uh: ParamId,
    pub bh: ParamId,
    pub in_dim: usize,
    pub hidden: usize,
}

impl GruCell {
    pub fn new(
        store: &mut ParamStore,
        prefix: &str,
        in_dim: usize,
        hidden: usize,
        rng: &mut SmallRng,
    ) -> Self {
        let mut mat = |suffix: &str, r: usize, c: usize, rng: &mut SmallRng| {
            store.add(format!("{prefix}.{suffix}"), xavier_uniform(r, c, rng))
        };
        let wz = mat("wz", in_dim, hidden, rng);
        let uz = mat("uz", hidden, hidden, rng);
        let wr = mat("wr", in_dim, hidden, rng);
        let ur = mat("ur", hidden, hidden, rng);
        let wh = mat("wh", in_dim, hidden, rng);
        let uh = mat("uh", hidden, hidden, rng);
        let bz = store.add(format!("{prefix}.bz"), Tensor::zeros(1, hidden));
        let br = store.add(format!("{prefix}.br"), Tensor::zeros(1, hidden));
        let bh = store.add(format!("{prefix}.bh"), Tensor::zeros(1, hidden));
        GruCell { wz, uz, bz, wr, ur, br, wh, uh, bh, in_dim, hidden }
    }

    /// One recurrent step on the tape: `(x[1,in], h[1,hidden]) → h'[1,hidden]`.
    pub fn forward(&self, tape: &mut Tape, store: &ParamStore, x: ValId, h: ValId) -> ValId {
        let gate = |tape: &mut Tape, w: ParamId, u: ParamId, b: ParamId| {
            let wv = tape.param(store, w);
            let uv = tape.param(store, u);
            let bv = tape.param(store, b);
            let xw = tape.matmul(x, wv);
            let hu = tape.matmul(h, uv);
            let s = tape.add(xw, hu);
            tape.add(s, bv)
        };
        let z_pre = gate(tape, self.wz, self.uz, self.bz);
        let z = tape.sigmoid(z_pre);
        let r_pre = gate(tape, self.wr, self.ur, self.br);
        let r = tape.sigmoid(r_pre);

        let wh = tape.param(store, self.wh);
        let uh = tape.param(store, self.uh);
        let bh = tape.param(store, self.bh);
        let xwh = tape.matmul(x, wh);
        let rh = tape.mul_elem(r, h);
        let rhu = tape.matmul(rh, uh);
        let s = tape.add(xwh, rhu);
        let cand_pre = tape.add(s, bh);
        let cand = tape.tanh(cand_pre);

        let one_minus_z = tape.one_minus(z);
        let keep = tape.mul_elem(one_minus_z, h);
        let take = tape.mul_elem(z, cand);
        tape.add(keep, take)
    }

    /// One recurrent step without a tape.
    pub fn infer(&self, store: &ParamStore, x: &Tensor, h: &Tensor) -> Tensor {
        let gate = |w: ParamId, u: ParamId, b: ParamId| {
            x.matmul(store.value(w)).add(&h.matmul(store.value(u))).add(store.value(b))
        };
        let z = gate(self.wz, self.uz, self.bz).sigmoid();
        let r = gate(self.wr, self.ur, self.br).sigmoid();
        let cand = x
            .matmul(store.value(self.wh))
            .add(&r.mul_elem(h).matmul(store.value(self.uh)))
            .add(store.value(self.bh))
            .tanh();
        z.map(|v| 1.0 - v).mul_elem(h).add(&z.mul_elem(&cand))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::seeded_rng;

    #[test]
    fn linear_forward_matches_infer() {
        let mut rng = seeded_rng(3);
        let mut store = ParamStore::new();
        let lin = Linear::new(&mut store, "l", 3, 2, &mut rng);
        let x = Tensor::from_row(vec![1.0, -2.0, 0.5]);
        let mut tape = Tape::new();
        let xv = tape.constant(x.clone());
        let y = lin.forward(&mut tape, &store, xv);
        assert!(tape.value(y).approx_eq(&lin.infer(&store, &x), 1e-6));
    }

    #[test]
    fn embedding_bag_empty_is_zero() {
        let mut rng = seeded_rng(3);
        let mut store = ParamStore::new();
        let emb = Embedding::new(&mut store, "e", 10, 4, &mut rng);
        let bag = emb.infer_bag(&store, &[]);
        assert_eq!(bag.as_slice(), &[0.0; 4]);
    }

    #[test]
    fn gru_forward_matches_infer() {
        let mut rng = seeded_rng(11);
        let mut store = ParamStore::new();
        let gru = GruCell::new(&mut store, "g", 4, 5, &mut rng);
        let x = Tensor::from_row(vec![0.1, 0.2, -0.3, 0.4]);
        let h = Tensor::from_row(vec![0.0, 0.5, -0.5, 0.25, 1.0]);
        let mut tape = Tape::new();
        let xv = tape.constant(x.clone());
        let hv = tape.constant(h.clone());
        let out = gru.forward(&mut tape, &store, xv, hv);
        assert!(tape.value(out).approx_eq(&gru.infer(&store, &x, &h), 1e-5));
    }

    #[test]
    fn gru_output_is_bounded() {
        // h' is a convex combination of h and tanh(·), so it stays in [-1, 1]
        // whenever h does.
        let mut rng = seeded_rng(5);
        let mut store = ParamStore::new();
        let gru = GruCell::new(&mut store, "g", 2, 3, &mut rng);
        let mut h = Tensor::zeros(1, 3);
        for i in 0..20 {
            let x = Tensor::from_row(vec![(i as f32).sin(), (i as f32).cos()]);
            h = gru.infer(&store, &x, &h);
            assert!(h.as_slice().iter().all(|v| v.abs() <= 1.0 + 1e-5));
        }
    }

    #[test]
    fn gru_gradients_flow_to_all_parameters() {
        let mut rng = seeded_rng(17);
        let mut store = ParamStore::new();
        let gru = GruCell::new(&mut store, "g", 2, 2, &mut rng);
        let mut tape = Tape::new();
        let x = tape.constant(Tensor::from_row(vec![1.0, -1.0]));
        let h = tape.constant(Tensor::zeros(1, 2));
        let out = gru.forward(&mut tape, &store, x, h);
        let ones = tape.constant(Tensor::from_vec(2, 1, vec![1.0, 1.0]));
        let s = tape.matmul(out, ones);
        tape.backward(s);
        tape.collect_grads(&mut store);
        for pid in [gru.wz, gru.uz, gru.bz, gru.wr, gru.wh, gru.uh, gru.bh] {
            assert!(store.dense_grad(pid).is_some(), "missing grad for {pid:?}");
        }
    }
}
