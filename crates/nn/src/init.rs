//! Seeded weight initialization.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::tensor::Tensor;

/// Xavier/Glorot uniform initialization: `U(-a, a)` with
/// `a = sqrt(6 / (fan_in + fan_out))`.
pub fn xavier_uniform(rows: usize, cols: usize, rng: &mut SmallRng) -> Tensor {
    let a = (6.0 / (rows + cols) as f32).sqrt();
    uniform(rows, cols, -a, a, rng)
}

/// Uniform initialization in `[lo, hi)`.
pub fn uniform(rows: usize, cols: usize, lo: f32, hi: f32, rng: &mut SmallRng) -> Tensor {
    let data = (0..rows * cols).map(|_| rng.gen_range(lo..hi)).collect();
    Tensor::from_vec(rows, cols, data)
}

/// Deterministic RNG from a seed.
pub fn seeded_rng(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xavier_respects_bound() {
        let mut rng = seeded_rng(7);
        let t = xavier_uniform(10, 10, &mut rng);
        let a = (6.0 / 20.0f32).sqrt();
        assert!(t.as_slice().iter().all(|v| v.abs() <= a));
    }

    #[test]
    fn seeded_init_is_deterministic() {
        let a = xavier_uniform(4, 4, &mut seeded_rng(42));
        let b = xavier_uniform(4, 4, &mut seeded_rng(42));
        assert!(a.approx_eq(&b, 0.0));
    }

    #[test]
    fn different_seeds_differ() {
        let a = xavier_uniform(4, 4, &mut seeded_rng(1));
        let b = xavier_uniform(4, 4, &mut seeded_rng(2));
        assert!(!a.approx_eq(&b, 1e-9));
    }
}
