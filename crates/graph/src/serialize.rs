//! Depth-first search serialization of a query schema (paper §3.3,
//! Algorithm 2).
//!
//! A SQL query schema is a partially ordered set; the DFS over the schema
//! graph linearizes it while preserving inclusion and table relations: the
//! database always precedes its tables, and each table (after the first)
//! follows a relation-neighbor when one exists on the stack. The iteration
//! order `π` randomizes successor order so training sees multiple
//! linearizations of the same schema.

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;

use crate::graph::{NodeId, QuerySchema, SchemaGraph, ROOT};

/// Successor iteration order `π`.
pub enum IterOrder<'a> {
    /// Graph insertion order (deterministic).
    Fixed,
    /// Shuffled per node visit (training-time augmentation).
    Random(&'a mut SmallRng),
}

/// DFS-serialize `schema` over `graph`: returns node ids in visit order with
/// `ν_s` dropped (database first, then tables).
///
/// Returns `None` if the schema references unknown nodes.
pub fn dfs_serialize(
    graph: &SchemaGraph,
    schema: &QuerySchema,
    mut order: IterOrder<'_>,
) -> Option<Vec<NodeId>> {
    let (db, tables) = graph.schema_nodes(schema)?;
    let mut nodes: Vec<NodeId> = Vec::with_capacity(tables.len() + 2);
    nodes.push(ROOT);
    nodes.push(db);
    nodes.extend(tables.iter().copied());

    let in_schema = |n: NodeId| nodes.contains(&n);
    let mut visited: Vec<NodeId> = Vec::with_capacity(nodes.len());
    let mut stack = vec![ROOT];
    while let Some(node) = stack.pop() {
        if visited.contains(&node) {
            continue;
        }
        visited.push(node);
        if visited.len() == nodes.len() {
            break;
        }
        let mut successors: Vec<NodeId> =
            graph.successors(node).filter(|s| in_schema(*s) && !visited.contains(s)).collect();
        if let IterOrder::Random(rng) = &mut order {
            successors.shuffle(rng);
        }
        stack.extend(successors);
    }
    if visited.len() != nodes.len() {
        // Disconnected schema: fall back to appending the unreached tables in
        // deterministic order so every schema serializes (the paper samples
        // only valid schemata, but routing targets from adapted datasets can
        // be technically disconnected when a join uses an unregistered key).
        for n in &nodes {
            if !visited.contains(n) {
                visited.push(*n);
            }
        }
    }
    Some(visited[1..].to_vec()) // skip ν_s
}

/// Serialize to node names.
pub fn dfs_serialize_names(
    graph: &SchemaGraph,
    schema: &QuerySchema,
    order: IterOrder<'_>,
) -> Option<Vec<String>> {
    dfs_serialize(graph, schema, order)
        .map(|ids| ids.into_iter().map(|id| graph.name(id).to_string()).collect())
}

/// "Basic serialization" ablation (Table 7 "BS"): database followed by the
/// tables in arbitrary (shuffled) order with no relation awareness.
pub fn basic_serialize(
    graph: &SchemaGraph,
    schema: &QuerySchema,
    rng: &mut SmallRng,
) -> Option<Vec<NodeId>> {
    let (db, mut tables) = graph.schema_nodes(schema)?;
    tables.shuffle(rng);
    let mut out = vec![db];
    out.extend(tables);
    Some(out)
}

/// Reconstruct a [`QuerySchema`] from a serialized node sequence
/// (database-first). Returns `None` on malformed sequences.
pub fn deserialize_schema(graph: &SchemaGraph, ids: &[NodeId]) -> Option<QuerySchema> {
    let (first, rest) = ids.split_first()?;
    if !matches!(graph.kind(*first), crate::graph::NodeKind::Database) {
        return None;
    }
    let db_name = graph.name(*first).to_string();
    let mut tables = Vec::with_capacity(rest.len());
    for t in rest {
        if graph.database_of(*t) != Some(*first) {
            return None;
        }
        tables.push(graph.name(*t).to_string());
    }
    Some(QuerySchema::new(db_name, tables))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::fixtures::collection;
    use rand::SeedableRng;

    fn graph() -> SchemaGraph {
        SchemaGraph::build(&collection())
    }

    #[test]
    fn database_always_first() {
        let g = graph();
        let schema = QuerySchema::new(
            "concert_singer",
            vec!["singer".into(), "singer_in_concert".into(), "concert".into()],
        );
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..20 {
            let ids = dfs_serialize(&g, &schema, IterOrder::Random(&mut rng)).unwrap();
            assert_eq!(g.name(ids[0]), "concert_singer");
            assert_eq!(ids.len(), 4);
        }
    }

    #[test]
    fn join_table_relations_respected() {
        // In DFS order, after the junction table appears, its neighbors can
        // follow; crucially every serialization contains exactly the schema
        // nodes, each once.
        let g = graph();
        let schema = QuerySchema::new(
            "world",
            vec!["country".into(), "countrylanguage".into(), "city".into()],
        );
        let ids = dfs_serialize(&g, &schema, IterOrder::Fixed).unwrap();
        let names: Vec<&str> = ids.iter().map(|i| g.name(*i)).collect();
        assert_eq!(names[0], "world");
        let mut sorted = names[1..].to_vec();
        sorted.sort();
        assert_eq!(sorted, vec!["city", "country", "countrylanguage"]);
    }

    #[test]
    fn random_orders_differ_but_cover_same_nodes() {
        let g = graph();
        let schema = QuerySchema::new(
            "world",
            vec!["country".into(), "countrylanguage".into(), "city".into()],
        );
        let mut rng = SmallRng::seed_from_u64(7);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..30 {
            let ids = dfs_serialize(&g, &schema, IterOrder::Random(&mut rng)).unwrap();
            seen.insert(ids.clone());
            let schema_back = deserialize_schema(&g, &ids).unwrap();
            assert!(schema_back.same_as(&schema));
        }
        assert!(seen.len() > 1, "expected multiple DFS linearizations");
    }

    #[test]
    fn roundtrip_deserialize() {
        let g = graph();
        let schema = QuerySchema::new("geo", vec!["city".into(), "river".into()]);
        let ids = dfs_serialize(&g, &schema, IterOrder::Fixed).unwrap();
        let back = deserialize_schema(&g, &ids).unwrap();
        assert!(back.same_as(&schema));
    }

    #[test]
    fn single_table_schema() {
        let g = graph();
        let schema = QuerySchema::new("world", vec!["city".into()]);
        let names = dfs_serialize_names(&g, &schema, IterOrder::Fixed).unwrap();
        assert_eq!(names, vec!["world", "city"]);
    }

    #[test]
    fn disconnected_schema_still_serializes() {
        let g = graph();
        // singer & concert are not related without the junction table
        let schema = QuerySchema::new("concert_singer", vec!["singer".into(), "concert".into()]);
        let ids = dfs_serialize(&g, &schema, IterOrder::Fixed).unwrap();
        assert_eq!(ids.len(), 3);
    }

    #[test]
    fn basic_serialization_shuffles_tables() {
        let g = graph();
        let schema = QuerySchema::new(
            "world",
            vec!["country".into(), "countrylanguage".into(), "city".into()],
        );
        let mut rng = SmallRng::seed_from_u64(3);
        let mut orders = std::collections::HashSet::new();
        for _ in 0..30 {
            let ids = basic_serialize(&g, &schema, &mut rng).unwrap();
            assert_eq!(g.name(ids[0]), "world");
            orders.insert(ids);
        }
        assert!(orders.len() > 1);
    }

    #[test]
    fn deserialize_rejects_cross_database_tables() {
        let g = graph();
        let world = g.database_node("world").unwrap();
        let geo_city = g.table_node("geo", "city").unwrap();
        assert!(deserialize_schema(&g, &[world, geo_city]).is_none());
    }
}
