//! Random-walk schema sampling (paper §3.4).
//!
//! Training schemata are sampled by finite-length random walks from `ν_s`:
//! a walk first steps to a database, then wanders over that database's
//! table-relation edges; the traversed database and (unique) tables form a
//! sampled schema, always valid by construction.

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::Rng;

use crate::graph::{NodeId, QuerySchema, SchemaGraph};

/// Configuration for schema sampling.
#[derive(Debug, Clone)]
pub struct WalkConfig {
    /// Maximum number of distinct tables per sampled schema.
    pub max_tables: usize,
    /// Probability of stopping after each table (geometric length).
    pub stop_prob: f64,
}

impl Default for WalkConfig {
    fn default() -> Self {
        // Mirrors the Spider/Bird SQL-schema size distribution: mostly 1–2
        // tables, a tail up to 4.
        WalkConfig { max_tables: 4, stop_prob: 0.45 }
    }
}

/// Sample one valid query schema by a random walk.
pub fn sample_schema(graph: &SchemaGraph, cfg: &WalkConfig, rng: &mut SmallRng) -> QuerySchema {
    let dbs = graph.database_nodes();
    assert!(!dbs.is_empty(), "cannot sample from an empty collection");
    let db = *dbs.choose(rng).expect("non-empty databases");
    let tables = graph.tables_of(db);
    assert!(!tables.is_empty(), "database {} has no tables", graph.name(db));
    let mut current = *tables.choose(rng).expect("non-empty tables");
    let mut picked: Vec<NodeId> = vec![current];

    while picked.len() < cfg.max_tables && !rng.gen_bool(cfg.stop_prob) {
        let neighbors: Vec<NodeId> =
            graph.related_tables(current).into_iter().filter(|t| !picked.contains(t)).collect();
        // Also allow continuing from any already-picked table (trail
        // branching), which matches DFS-serializable shapes.
        let mut frontier = neighbors;
        if frontier.is_empty() {
            let mut alt = Vec::new();
            for p in &picked {
                for n in graph.related_tables(*p) {
                    if !picked.contains(&n) && !alt.contains(&n) {
                        alt.push(n);
                    }
                }
            }
            frontier = alt;
        }
        match frontier.choose(rng) {
            Some(&next) => {
                picked.push(next);
                current = next;
            }
            None => break, // no unvisited related tables: stop the walk
        }
    }

    QuerySchema::new(
        graph.name(db).to_string(),
        picked.iter().map(|t| graph.name(*t).to_string()).collect(),
    )
}

/// Sample `n` schemata, guaranteeing that every database and every table in
/// the collection appears in at least one sample when `n` is large enough
/// (the paper's synthesis covers 100% of databases and tables).
pub fn sample_covering(
    graph: &SchemaGraph,
    cfg: &WalkConfig,
    n: usize,
    rng: &mut SmallRng,
) -> Vec<QuerySchema> {
    let mut out = Vec::with_capacity(n);
    // First pass: one single-table schema per table (coverage floor).
    'outer: for db in graph.database_nodes() {
        for t in graph.tables_of(db) {
            if out.len() >= n {
                break 'outer;
            }
            out.push(QuerySchema::new(graph.name(db).to_string(), vec![graph.name(t).to_string()]));
        }
    }
    while out.len() < n {
        out.push(sample_schema(graph, cfg, rng));
    }
    out.shuffle(rng);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::fixtures::collection;
    use rand::SeedableRng;

    fn graph() -> SchemaGraph {
        SchemaGraph::build(&collection())
    }

    #[test]
    fn sampled_schemata_are_valid() {
        let g = graph();
        let mut rng = SmallRng::seed_from_u64(11);
        let cfg = WalkConfig::default();
        for _ in 0..200 {
            let s = sample_schema(&g, &cfg, &mut rng);
            assert!(g.is_valid_schema(&s), "invalid sampled schema {s}");
            assert!(!s.tables.is_empty());
            assert!(s.tables.len() <= cfg.max_tables);
        }
    }

    #[test]
    fn sampled_tables_are_unique() {
        let g = graph();
        let mut rng = SmallRng::seed_from_u64(13);
        let cfg = WalkConfig { max_tables: 4, stop_prob: 0.1 };
        for _ in 0..100 {
            let s = sample_schema(&g, &cfg, &mut rng);
            let mut t = s.tables.clone();
            t.sort();
            t.dedup();
            assert_eq!(t.len(), s.tables.len());
        }
    }

    #[test]
    fn covering_sample_covers_all_tables() {
        let g = graph();
        let mut rng = SmallRng::seed_from_u64(17);
        let samples = sample_covering(&g, &WalkConfig::default(), 50, &mut rng);
        assert_eq!(samples.len(), 50);
        let mut seen_tables = std::collections::HashSet::new();
        let mut seen_dbs = std::collections::HashSet::new();
        for s in &samples {
            seen_dbs.insert(s.database.clone());
            for t in &s.tables {
                seen_tables.insert((s.database.clone(), t.clone()));
            }
        }
        assert_eq!(seen_dbs.len(), 3);
        assert_eq!(seen_tables.len(), 9);
    }

    #[test]
    fn multi_table_schemata_occur() {
        let g = graph();
        let mut rng = SmallRng::seed_from_u64(19);
        let cfg = WalkConfig { max_tables: 3, stop_prob: 0.2 };
        let any_multi = (0..100).any(|_| sample_schema(&g, &cfg, &mut rng).tables.len() > 1);
        assert!(any_multi);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let g = graph();
        let a: Vec<QuerySchema> = {
            let mut rng = SmallRng::seed_from_u64(42);
            (0..10).map(|_| sample_schema(&g, &WalkConfig::default(), &mut rng)).collect()
        };
        let b: Vec<QuerySchema> = {
            let mut rng = SmallRng::seed_from_u64(42);
            (0..10).map(|_| sample_schema(&g, &WalkConfig::default(), &mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn walk_never_leaves_database() {
        let g = graph();
        let mut rng = SmallRng::seed_from_u64(23);
        for _ in 0..100 {
            let s = sample_schema(&g, &WalkConfig { max_tables: 4, stop_prob: 0.1 }, &mut rng);
            let db = g.database_node(&s.database).unwrap();
            for t in &s.tables {
                let tn = g.table_node(&s.database, t).unwrap();
                assert_eq!(g.database_of(tn), Some(db));
            }
        }
    }
}
