//! `dbcopilot-graph` — the schema graph substrate (paper §3.2–§3.4).
//!
//! * [`graph::SchemaGraph`] — Algorithm 1: three-tier graph over `ν_s`,
//!   databases and tables with inclusion, primary–foreign, foreign–foreign
//!   and joinable edges;
//! * [`serialize`] — Algorithm 2: DFS serialization of query schemata (plus
//!   the "basic serialization" ablation);
//! * [`walks`] — random-walk sampling of valid schemata for training-data
//!   synthesis;
//! * [`joinable`] — content-based joinability via Jaccard overlap (§4.1.5);
//! * [`trie`] — the prefix tree that powers graph-constrained decoding.
//!
//! ```
//! use dbcopilot_graph::SchemaGraph;
//! use dbcopilot_sqlengine::{Collection, DataType, DatabaseSchema, TableSchema};
//!
//! let mut collection = Collection::new();
//! let mut db = DatabaseSchema::new("world");
//! db.add_table(TableSchema::new("city").column("id", DataType::Int).primary(0));
//! collection.add_database(db);
//!
//! let graph = SchemaGraph::build(&collection);
//! assert_eq!(graph.database_nodes().len(), 1);
//! ```

pub mod graph;
pub mod joinable;
pub mod serialize;
pub mod trie;
pub mod walks;

pub use graph::{EdgeKind, NodeId, NodeKind, QuerySchema, SchemaGraph, ROOT};
pub use joinable::{augment_graph_with_joinable, detect_joinable, jaccard, JoinablePair};
pub use serialize::{
    basic_serialize, deserialize_schema, dfs_serialize, dfs_serialize_names, IterOrder,
};
pub use trie::{Trie, TrieCursor};
pub use walks::{sample_covering, sample_schema, WalkConfig};
