//! Schema graph construction (paper §3.2, Algorithm 1).
//!
//! A three-tier directed graph: a virtual root `ν_s` → database nodes →
//! table nodes, plus bidirectional *table relations* between tables of the
//! same database:
//!
//! * **Primary–Foreign**: an explicit foreign key between two tables;
//! * **Foreign–Foreign**: two tables whose foreign keys reference the same
//!   column of a third table (the paper's Example 3);
//! * **Joinable**: two tables share column values (Jaccard overlap above a
//!   threshold, §4.1.5) — detected from populated content by
//!   [`crate::joinable`].

use std::collections::{BTreeMap, BTreeSet, HashMap};

use serde::{Deserialize, Serialize};

use dbcopilot_sqlengine::Collection;

/// Index of a node in the schema graph. Node `0` is always `ν_s`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub u32);

/// What a node represents.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum NodeKind {
    /// The virtual root `ν_s` denoting the whole collection.
    Root,
    Database,
    /// A table, tagged with its owning database node.
    Table {
        database: NodeId,
    },
}

/// Relation type on an edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EdgeKind {
    /// Root→database or database→table membership.
    Inclusion,
    /// Explicit primary–foreign key relation.
    PrimaryForeign,
    /// Implicit foreign–foreign relation (shared referenced column).
    ForeignForeign,
    /// Content-overlap joinability.
    Joinable,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Node {
    name: String,
    kind: NodeKind,
}

/// The heterogeneous directed schema graph `G = ⟨V, E⟩`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SchemaGraph {
    nodes: Vec<Node>,
    /// Adjacency: outgoing `(target, kind)` pairs per node, in insertion
    /// order (deterministic).
    adj: Vec<Vec<(NodeId, EdgeKind)>>,
    db_by_name: HashMap<String, NodeId>,
    /// Keyed by `"{db}\u{1f}{table}"` (string keys keep the graph
    /// JSON-serializable for router persistence).
    table_by_name: HashMap<String, NodeId>,
}

/// Composite key for `table_by_name`.
fn table_key(db: &str, table: &str) -> String {
    format!("{db}\u{1f}{table}")
}

/// The root node id.
pub const ROOT: NodeId = NodeId(0);

impl SchemaGraph {
    /// Build the inclusion skeleton plus explicit PF and implicit FF table
    /// relations from a schema collection (Algorithm 1, lines 1–6 and the
    /// FK-derived part of `getJoinableTables`). Content-based joinable edges
    /// can be added afterwards with [`SchemaGraph::add_joinable_edge`].
    pub fn build(collection: &Collection) -> Self {
        let mut g = SchemaGraph {
            nodes: vec![Node { name: "<root>".into(), kind: NodeKind::Root }],
            adj: vec![Vec::new()],
            db_by_name: HashMap::new(),
            table_by_name: HashMap::new(),
        };
        for db in collection.databases.values() {
            let db_id = g.push_node(db.name.clone(), NodeKind::Database);
            g.db_by_name.insert(db.name.clone(), db_id);
            g.add_edge(ROOT, db_id, EdgeKind::Inclusion);
            for t in &db.tables {
                let t_id = g.push_node(t.name.clone(), NodeKind::Table { database: db_id });
                g.table_by_name.insert(table_key(&db.name, &t.name), t_id);
                g.add_edge(db_id, t_id, EdgeKind::Inclusion);
            }
            // Explicit primary-foreign edges (bidirectional).
            for t in &db.tables {
                let t_id = g.table_by_name[&table_key(&db.name, &t.name)];
                for fk in &t.foreign_keys {
                    if let Some(&r_id) = g.table_by_name.get(&table_key(&db.name, &fk.ref_table)) {
                        g.add_edge_bidi(t_id, r_id, EdgeKind::PrimaryForeign);
                    }
                }
            }
            // Implicit foreign-foreign edges: two tables referencing the same
            // (table, column).
            // BTreeMap: iteration order determines edge-insertion order, which
            // must not vary across processes (walk sampling follows adjacency
            // order; a HashMap here makes training nondeterministic).
            let mut by_target: BTreeMap<(String, String), Vec<NodeId>> = BTreeMap::new();
            for t in &db.tables {
                let t_id = g.table_by_name[&table_key(&db.name, &t.name)];
                for fk in &t.foreign_keys {
                    by_target
                        .entry((
                            fk.ref_table.to_ascii_lowercase(),
                            fk.ref_column.to_ascii_lowercase(),
                        ))
                        .or_default()
                        .push(t_id);
                }
            }
            for (_, referrers) in by_target {
                for i in 0..referrers.len() {
                    for j in (i + 1)..referrers.len() {
                        if referrers[i] != referrers[j] {
                            g.add_edge_bidi(referrers[i], referrers[j], EdgeKind::ForeignForeign);
                        }
                    }
                }
            }
        }
        g
    }

    fn push_node(&mut self, name: String, kind: NodeKind) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node { name, kind });
        self.adj.push(Vec::new());
        id
    }

    fn add_edge(&mut self, from: NodeId, to: NodeId, kind: EdgeKind) {
        if !self.adj[from.0 as usize].iter().any(|(t, _)| *t == to) {
            self.adj[from.0 as usize].push((to, kind));
        }
    }

    fn add_edge_bidi(&mut self, a: NodeId, b: NodeId, kind: EdgeKind) {
        self.add_edge(a, b, kind);
        self.add_edge(b, a, kind);
    }

    /// Add a content-derived joinable edge between two tables of the same
    /// database. No-op if the edge exists or the nodes are unknown.
    pub fn add_joinable_edge(&mut self, db: &str, table_a: &str, table_b: &str) {
        let (Some(&a), Some(&b)) = (
            self.table_by_name.get(&table_key(db, table_a)),
            self.table_by_name.get(&table_key(db, table_b)),
        ) else {
            return;
        };
        self.add_edge_bidi(a, b, EdgeKind::Joinable);
    }

    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    pub fn num_databases(&self) -> usize {
        self.db_by_name.len()
    }

    pub fn num_tables(&self) -> usize {
        self.table_by_name.len()
    }

    pub fn name(&self, id: NodeId) -> &str {
        &self.nodes[id.0 as usize].name
    }

    pub fn kind(&self, id: NodeId) -> &NodeKind {
        &self.nodes[id.0 as usize].kind
    }

    /// Out-neighbors in insertion order.
    pub fn successors(&self, id: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.adj[id.0 as usize].iter().map(|(t, _)| *t)
    }

    /// Out-neighbors with edge kinds.
    pub fn successors_with_kind(
        &self,
        id: NodeId,
    ) -> impl Iterator<Item = (NodeId, EdgeKind)> + '_ {
        self.adj[id.0 as usize].iter().copied()
    }

    /// Database node by name.
    pub fn database_node(&self, name: &str) -> Option<NodeId> {
        self.db_by_name.get(name).copied()
    }

    /// Table node by database + table name.
    pub fn table_node(&self, db: &str, table: &str) -> Option<NodeId> {
        self.table_by_name.get(&table_key(db, table)).copied()
    }

    /// All database nodes, deterministic order.
    pub fn database_nodes(&self) -> Vec<NodeId> {
        self.successors(ROOT).collect()
    }

    /// All table nodes of a database, deterministic order.
    pub fn tables_of(&self, db: NodeId) -> Vec<NodeId> {
        debug_assert!(matches!(self.kind(db), NodeKind::Database));
        self.successors(db).filter(|t| matches!(self.kind(*t), NodeKind::Table { .. })).collect()
    }

    /// The owning database of a table node.
    pub fn database_of(&self, table: NodeId) -> Option<NodeId> {
        match self.kind(table) {
            NodeKind::Table { database } => Some(*database),
            _ => None,
        }
    }

    /// Table-relation neighbors (PF/FF/Joinable) of a table, restricted to
    /// its own database.
    pub fn related_tables(&self, table: NodeId) -> Vec<NodeId> {
        let db = self.database_of(table);
        self.successors_with_kind(table)
            .filter(|(_, k)| *k != EdgeKind::Inclusion)
            .map(|(t, _)| t)
            .filter(|t| self.database_of(*t) == db)
            .collect()
    }

    /// The query schema `⟨D, T⟩` the paper routes to.
    ///
    /// Checks the two validity conditions of §3.2: tables belong to the
    /// database, and (for multi-table schemata) the tables are connected
    /// through table relations.
    pub fn is_valid_schema(&self, schema: &QuerySchema) -> bool {
        let Some(db) = self.database_node(&schema.database) else {
            return false;
        };
        let mut ids = Vec::with_capacity(schema.tables.len());
        for t in &schema.tables {
            match self.table_node(&schema.database, t) {
                Some(id) => ids.push(id),
                None => return false,
            }
        }
        if ids.is_empty() {
            return false;
        }
        let _ = db;
        if ids.len() == 1 {
            return true;
        }
        // Connectivity over table relations within the schema's table set.
        let set: BTreeSet<NodeId> = ids.iter().copied().collect();
        let mut seen = BTreeSet::new();
        let mut stack = vec![ids[0]];
        while let Some(n) = stack.pop() {
            if !seen.insert(n) {
                continue;
            }
            for r in self.related_tables(n) {
                if set.contains(&r) && !seen.contains(&r) {
                    stack.push(r);
                }
            }
        }
        seen.len() == set.len()
    }

    /// Node ids for a schema: database node first, then tables.
    pub fn schema_nodes(&self, schema: &QuerySchema) -> Option<(NodeId, Vec<NodeId>)> {
        let db = self.database_node(&schema.database)?;
        let mut tables = Vec::with_capacity(schema.tables.len());
        for t in &schema.tables {
            tables.push(self.table_node(&schema.database, t)?);
        }
        Some((db, tables))
    }
}

/// A SQL query schema `S = ⟨D, T⟩` (Table 1): the routing target.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct QuerySchema {
    pub database: String,
    /// Table names, order-insensitive for comparison purposes but kept in
    /// serialization order.
    pub tables: Vec<String>,
}

impl QuerySchema {
    pub fn new(database: impl Into<String>, tables: Vec<String>) -> Self {
        QuerySchema { database: database.into(), tables }
    }

    /// Case-normalized, order-insensitive equality.
    pub fn same_as(&self, other: &QuerySchema) -> bool {
        if !self.database.eq_ignore_ascii_case(&other.database)
            || self.tables.len() != other.tables.len()
        {
            return false;
        }
        let mut a: Vec<String> = self.tables.iter().map(|t| t.to_ascii_lowercase()).collect();
        let mut b: Vec<String> = other.tables.iter().map(|t| t.to_ascii_lowercase()).collect();
        a.sort();
        b.sort();
        a == b
    }

    /// Does this schema cover (⊇) the tables of `other` in the same database?
    pub fn covers(&self, other: &QuerySchema) -> bool {
        if !self.database.eq_ignore_ascii_case(&other.database) {
            return false;
        }
        let mine: BTreeSet<String> = self.tables.iter().map(|t| t.to_ascii_lowercase()).collect();
        other.tables.iter().all(|t| mine.contains(&t.to_ascii_lowercase()))
    }
}

impl std::fmt::Display for QuerySchema {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "⟨{}, {{{}}}⟩", self.database, self.tables.join(", "))
    }
}

#[cfg(test)]
pub(crate) mod fixtures {
    use dbcopilot_sqlengine::{Collection, DataType, DatabaseSchema, TableSchema};

    /// concert_singer + world + flight — small multi-database collection
    /// mirroring the paper's examples.
    pub fn collection() -> Collection {
        let mut c = Collection::new();

        let mut concert = DatabaseSchema::new("concert_singer");
        concert.add_table(
            TableSchema::new("singer")
                .column("singer_id", DataType::Int)
                .column("name", DataType::Text)
                .primary(0),
        );
        concert.add_table(
            TableSchema::new("concert")
                .column("concert_id", DataType::Int)
                .column("year", DataType::Int)
                .primary(0),
        );
        concert.add_table(
            TableSchema::new("singer_in_concert")
                .column("singer_id", DataType::Int)
                .column("concert_id", DataType::Int)
                .foreign("singer_id", "singer", "singer_id")
                .foreign("concert_id", "concert", "concert_id"),
        );
        c.add_database(concert);

        let mut world = DatabaseSchema::new("world");
        world.add_table(
            TableSchema::new("country")
                .column("code", DataType::Text)
                .column("name", DataType::Text)
                .column("continent", DataType::Text)
                .primary(0),
        );
        world.add_table(
            TableSchema::new("countrylanguage")
                .column("countrycode", DataType::Text)
                .column("language", DataType::Text)
                .foreign("countrycode", "country", "code"),
        );
        world.add_table(
            TableSchema::new("city")
                .column("id", DataType::Int)
                .column("name", DataType::Text)
                .column("countrycode", DataType::Text)
                .primary(0)
                .foreign("countrycode", "country", "code"),
        );
        c.add_database(world);

        let mut geo = DatabaseSchema::new("geo");
        geo.add_table(TableSchema::new("state").column("state_name", DataType::Text).primary(0));
        geo.add_table(
            TableSchema::new("city")
                .column("city_name", DataType::Text)
                .column("state_name", DataType::Text)
                .foreign("state_name", "state", "state_name"),
        );
        geo.add_table(
            TableSchema::new("river")
                .column("river_name", DataType::Text)
                .column("traverse", DataType::Text)
                .foreign("traverse", "state", "state_name"),
        );
        c.add_database(geo);
        c
    }
}

#[cfg(test)]
mod tests {
    use super::fixtures::collection;
    use super::*;

    #[test]
    fn build_counts() {
        let g = SchemaGraph::build(&collection());
        assert_eq!(g.num_databases(), 3);
        assert_eq!(g.num_tables(), 9);
        assert_eq!(g.num_nodes(), 1 + 3 + 9);
    }

    #[test]
    fn inclusion_edges() {
        let g = SchemaGraph::build(&collection());
        let dbs = g.database_nodes();
        assert_eq!(dbs.len(), 3);
        let world = g.database_node("world").unwrap();
        let tables = g.tables_of(world);
        assert_eq!(tables.len(), 3);
    }

    #[test]
    fn primary_foreign_edges_are_bidirectional() {
        let g = SchemaGraph::build(&collection());
        let sic = g.table_node("concert_singer", "singer_in_concert").unwrap();
        let singer = g.table_node("concert_singer", "singer").unwrap();
        assert!(g.related_tables(sic).contains(&singer));
        assert!(g.related_tables(singer).contains(&sic));
    }

    #[test]
    fn foreign_foreign_edge_exists() {
        // geo.city and geo.river both reference state.state_name (Example 3).
        let g = SchemaGraph::build(&collection());
        let city = g.table_node("geo", "city").unwrap();
        let river = g.table_node("geo", "river").unwrap();
        assert!(g.related_tables(city).contains(&river));
        let kinds: Vec<EdgeKind> =
            g.successors_with_kind(city).filter(|(t, _)| *t == river).map(|(_, k)| k).collect();
        assert_eq!(kinds, vec![EdgeKind::ForeignForeign]);
    }

    #[test]
    fn same_table_name_in_two_databases_is_distinct() {
        let g = SchemaGraph::build(&collection());
        let wc = g.table_node("world", "city").unwrap();
        let gc = g.table_node("geo", "city").unwrap();
        assert_ne!(wc, gc);
        assert_ne!(g.database_of(wc), g.database_of(gc));
    }

    #[test]
    fn valid_schema_checks() {
        let g = SchemaGraph::build(&collection());
        // connected pair
        assert!(g.is_valid_schema(&QuerySchema::new(
            "world",
            vec!["country".into(), "countrylanguage".into()]
        )));
        // single table always fine
        assert!(g.is_valid_schema(&QuerySchema::new("world", vec!["city".into()])));
        // FF-connected pair without the hub table
        assert!(g.is_valid_schema(&QuerySchema::new("geo", vec!["city".into(), "river".into()])));
        // disconnected pair
        assert!(!g.is_valid_schema(&QuerySchema::new(
            "concert_singer",
            vec!["singer".into(), "concert".into()]
        )));
        // wrong database
        assert!(!g.is_valid_schema(&QuerySchema::new("world", vec!["singer".into()])));
        // unknown database
        assert!(!g.is_valid_schema(&QuerySchema::new("nope", vec!["x".into()])));
        // empty tables
        assert!(!g.is_valid_schema(&QuerySchema::new("world", vec![])));
    }

    #[test]
    fn joinable_edges_addable() {
        let mut g = SchemaGraph::build(&collection());
        let before = g.related_tables(g.table_node("concert_singer", "singer").unwrap()).len();
        g.add_joinable_edge("concert_singer", "singer", "concert");
        let singer = g.table_node("concert_singer", "singer").unwrap();
        assert_eq!(g.related_tables(singer).len(), before + 1);
        // now singer–concert is a valid pair
        assert!(g.is_valid_schema(&QuerySchema::new(
            "concert_singer",
            vec!["singer".into(), "concert".into()]
        )));
    }

    #[test]
    fn query_schema_equality_ignores_order_and_case() {
        let a = QuerySchema::new("World", vec!["Country".into(), "city".into()]);
        let b = QuerySchema::new("world", vec!["city".into(), "country".into()]);
        assert!(a.same_as(&b));
        assert!(a.covers(&QuerySchema::new("world", vec!["city".into()])));
        assert!(!QuerySchema::new("world", vec!["city".into()]).covers(&a));
    }
}
