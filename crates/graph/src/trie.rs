//! Prefix trie over symbol sequences.
//!
//! Constrained decoding (paper §3.5, Figure 4) maintains "a dynamic prefix
//! tree containing the names of accessible nodes from decoded schema
//! elements": each schema-element name is a sequence of word-piece symbols,
//! and at every decoding step only symbols that continue some accessible
//! name are allowed. This trie is that structure, generic over the payload
//! attached to complete names.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// Symbol type used by the router's piece vocabulary.
pub type Sym = u32;

#[derive(Debug, Clone, Default, Serialize, Deserialize)]
struct TrieNode<P> {
    /// Ordered map so [`Trie::continuations`] enumerates symbols in a fixed
    /// (ascending) order: the candidate sets fed to the router's sampled
    /// softmax must not vary between trie instances, or training loses
    /// bit-for-bit reproducibility.
    children: BTreeMap<Sym, usize>,
    /// Payload when a complete name ends here.
    terminal: Option<P>,
}

/// A prefix trie mapping symbol sequences to payloads.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Trie<P> {
    nodes: Vec<TrieNode<P>>,
}

impl<P> Default for Trie<P> {
    fn default() -> Self {
        Self::new()
    }
}

impl<P> Trie<P> {
    pub fn new() -> Self {
        Trie { nodes: vec![TrieNode { children: BTreeMap::new(), terminal: None }] }
    }

    /// Insert a sequence with its payload. Overwrites an existing payload for
    /// the identical sequence.
    pub fn insert(&mut self, seq: &[Sym], payload: P) {
        let mut cur = 0usize;
        for &s in seq {
            cur = match self.nodes[cur].children.get(&s) {
                Some(&next) => next,
                None => {
                    let next = self.nodes.len();
                    self.nodes.push(TrieNode { children: BTreeMap::new(), terminal: None });
                    self.nodes[cur].children.insert(s, next);
                    next
                }
            };
        }
        self.nodes[cur].terminal = Some(payload);
    }

    /// Walk from the root along `seq`; `None` if the path does not exist.
    pub fn walk(&self, seq: &[Sym]) -> Option<TrieCursor> {
        let mut cur = TrieCursor { node: 0 };
        for &s in seq {
            cur = self.step(cur, s)?;
        }
        Some(cur)
    }

    /// Root cursor.
    pub fn root(&self) -> TrieCursor {
        TrieCursor { node: 0 }
    }

    /// Advance a cursor by one symbol.
    pub fn step(&self, cur: TrieCursor, sym: Sym) -> Option<TrieCursor> {
        self.nodes[cur.node].children.get(&sym).map(|&n| TrieCursor { node: n })
    }

    /// Symbols allowed from a cursor.
    pub fn continuations(&self, cur: TrieCursor) -> impl Iterator<Item = Sym> + '_ {
        self.nodes[cur.node].children.keys().copied()
    }

    /// Payload if a complete name ends at this cursor.
    pub fn terminal(&self, cur: TrieCursor) -> Option<&P> {
        self.nodes[cur.node].terminal.as_ref()
    }

    /// Number of trie nodes (diagnostics).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 1
    }
}

/// Opaque position in a [`Trie`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrieCursor {
    node: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build() -> Trie<&'static str> {
        let mut t = Trie::new();
        t.insert(&[1, 2, 3], "abc");
        t.insert(&[1, 2], "ab");
        t.insert(&[1, 4], "ad");
        t.insert(&[5], "e");
        t
    }

    #[test]
    fn continuations_at_root() {
        let t = build();
        let mut c: Vec<Sym> = t.continuations(t.root()).collect();
        c.sort();
        assert_eq!(c, vec![1, 5]);
    }

    #[test]
    fn walk_and_terminal() {
        let t = build();
        let cur = t.walk(&[1, 2]).unwrap();
        assert_eq!(t.terminal(cur), Some(&"ab"));
        let cur = t.walk(&[1]).unwrap();
        assert_eq!(t.terminal(cur), None);
        assert!(t.walk(&[9]).is_none());
    }

    #[test]
    fn prefix_sharing() {
        let t = build();
        // nodes: root + 1 + 2 + 3 + 4 + 5 = 6
        assert_eq!(t.len(), 6);
    }

    #[test]
    fn step_by_step_matches_walk() {
        let t = build();
        let mut cur = t.root();
        cur = t.step(cur, 1).unwrap();
        cur = t.step(cur, 2).unwrap();
        cur = t.step(cur, 3).unwrap();
        assert_eq!(t.terminal(cur), Some(&"abc"));
        assert!(t.step(cur, 1).is_none());
    }

    #[test]
    fn overwrite_payload() {
        let mut t = build();
        t.insert(&[5], "E2");
        assert_eq!(t.terminal(t.walk(&[5]).unwrap()), Some(&"E2"));
    }
}
