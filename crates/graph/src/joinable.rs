//! Content-based joinable-table detection (paper §4.1.5).
//!
//! "We adopted a heuristic way that two tables are joinable if the exact
//! match overlap (Jaccard similarity) of their column values is greater than
//! 0.85." Detection runs over populated databases and feeds
//! [`crate::graph::SchemaGraph::add_joinable_edge`].

use std::collections::BTreeSet;

use dbcopilot_sqlengine::{Database, Value};

use crate::graph::SchemaGraph;

/// Default Jaccard threshold from the paper.
pub const DEFAULT_JACCARD_THRESHOLD: f64 = 0.85;

/// Jaccard similarity of two value sets (exact-match overlap).
pub fn jaccard(a: &BTreeSet<String>, b: &BTreeSet<String>) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 0.0;
    }
    let inter = a.intersection(b).count();
    let union = a.len() + b.len() - inter;
    if union == 0 {
        0.0
    } else {
        inter as f64 / union as f64
    }
}

fn canon(v: &Value) -> String {
    match v {
        Value::Text(s) => format!("t:{}", s.to_ascii_lowercase()),
        Value::Int(i) => format!("n:{i}"),
        Value::Float(f) => format!("f:{f}"),
        Value::Bool(b) => format!("b:{b}"),
        Value::Null => "∅".into(),
    }
}

/// Detected joinable pair.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinablePair {
    pub table_a: String,
    pub column_a: String,
    pub table_b: String,
    pub column_b: String,
    pub jaccard: f64,
}

/// Scan all column pairs across distinct tables of one database and return
/// pairs whose value sets overlap above `threshold`.
pub fn detect_joinable(db: &Database, threshold: f64) -> Vec<JoinablePair> {
    // Precompute value sets per (table, column).
    let mut sets: Vec<(String, String, BTreeSet<String>)> = Vec::new();
    for table in db.tables.values() {
        for (ci, col) in table.schema.columns.iter().enumerate() {
            let vals: BTreeSet<String> = table.column_values(ci).map(canon).collect();
            if !vals.is_empty() {
                sets.push((table.schema.name.clone(), col.name.clone(), vals));
            }
        }
    }
    let mut out = Vec::new();
    for i in 0..sets.len() {
        for j in (i + 1)..sets.len() {
            if sets[i].0 == sets[j].0 {
                continue; // same table
            }
            let sim = jaccard(&sets[i].2, &sets[j].2);
            if sim > threshold {
                out.push(JoinablePair {
                    table_a: sets[i].0.clone(),
                    column_a: sets[i].1.clone(),
                    table_b: sets[j].0.clone(),
                    column_b: sets[j].1.clone(),
                    jaccard: sim,
                });
            }
        }
    }
    out
}

/// Detect joinable pairs in every database of a store and add the edges to
/// the schema graph. Returns the number of edges added.
pub fn augment_graph_with_joinable(
    graph: &mut SchemaGraph,
    store: &dbcopilot_sqlengine::Store,
    threshold: f64,
) -> usize {
    let mut added = 0;
    for db in store.databases.values() {
        for pair in detect_joinable(db, threshold) {
            graph.add_joinable_edge(&db.name, &pair.table_a, &pair.table_b);
            added += 1;
        }
    }
    added
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbcopilot_sqlengine::{DataType, DatabaseSchema, TableSchema};

    fn db_with_overlap() -> Database {
        let mut schema = DatabaseSchema::new("d");
        schema.add_table(
            TableSchema::new("orders")
                .column("order_id", DataType::Int)
                .column("customer", DataType::Text),
        );
        schema.add_table(
            TableSchema::new("shipments")
                .column("ship_id", DataType::Int)
                .column("client", DataType::Text),
        );
        let mut db = Database::from_schema(&schema);
        for (i, name) in ["ann", "bo", "cy", "di"].iter().enumerate() {
            db.insert("orders", vec![Value::Int(i as i64), Value::Text((*name).into())]).unwrap();
        }
        for (i, name) in ["ann", "bo", "cy", "di"].iter().enumerate() {
            db.insert("shipments", vec![Value::Int(100 + i as i64), Value::Text((*name).into())])
                .unwrap();
        }
        db
    }

    #[test]
    fn jaccard_basics() {
        let a: BTreeSet<String> = ["x", "y"].iter().map(|s| s.to_string()).collect();
        let b: BTreeSet<String> = ["y", "z"].iter().map(|s| s.to_string()).collect();
        assert!((jaccard(&a, &b) - 1.0 / 3.0).abs() < 1e-9);
        assert_eq!(jaccard(&a, &a), 1.0);
        assert_eq!(jaccard(&BTreeSet::new(), &BTreeSet::new()), 0.0);
    }

    #[test]
    fn detects_full_overlap() {
        let db = db_with_overlap();
        let pairs = detect_joinable(&db, DEFAULT_JACCARD_THRESHOLD);
        assert_eq!(pairs.len(), 1, "{pairs:?}");
        assert_eq!(pairs[0].column_a, "customer");
        assert_eq!(pairs[0].column_b, "client");
        assert!((pairs[0].jaccard - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ids_disjoint_not_joinable() {
        let db = db_with_overlap();
        // order_id = 0..3, ship_id = 100..103 → no pair for int columns
        let pairs = detect_joinable(&db, 0.5);
        assert!(pairs.iter().all(|p| p.column_a != "order_id"));
    }

    #[test]
    fn threshold_respected() {
        let db = db_with_overlap();
        assert!(detect_joinable(&db, 1.0).is_empty(), "strictly-greater threshold");
    }

    #[test]
    fn augments_schema_graph() {
        let db = db_with_overlap();
        let mut coll = dbcopilot_sqlengine::Collection::new();
        coll.add_database(db.schema());
        let mut g = SchemaGraph::build(&coll);
        let orders = g.table_node("d", "orders").unwrap();
        assert!(g.related_tables(orders).is_empty());
        let mut store = dbcopilot_sqlengine::Store::new();
        store.add(db);
        let added = augment_graph_with_joinable(&mut g, &store, DEFAULT_JACCARD_THRESHOLD);
        assert_eq!(added, 1);
        assert_eq!(g.related_tables(orders).len(), 1);
    }
}
