//! `dbcopilot-retrieval` — the schema-routing baselines of the paper's
//! evaluation (§4.1.3):
//!
//! * [`bm25`] — zero-shot Okapi BM25 and its "fine-tuned" (grid-searched)
//!   variant;
//! * [`dense`] — contrastively trained dense retrieval: the SXFMR generic
//!   encoder and the DTR fine-tuned table retriever;
//! * [`crush`] — CRUSH: schema hallucination + collective retrieval +
//!   relationship-aware reranking, over either base retriever;
//! * [`targets`] — shared retrieval targets, database vote aggregation, and
//!   the [`targets::SchemaRouter`] trait every method (including the
//!   DBCopilot router adapter) implements.
//!
//! ```
//! use dbcopilot_retrieval::{Bm25Index, Bm25Params, SchemaRouter, Target, TargetSet};
//!
//! let targets = TargetSet {
//!     targets: vec![Target {
//!         database: "world".into(),
//!         table: "city".into(),
//!         text: "city name population".into(),
//!     }],
//! };
//! let index = Bm25Index::build(targets, Bm25Params::default());
//! let result = index.route("population of each city", 10);
//! assert_eq!(result.database_names()[0], "world");
//! ```

pub mod bm25;
pub mod crush;
pub mod dense;
pub mod targets;
pub mod text;

pub use bm25::{tune_bm25, Bm25Index, Bm25Params};
pub use crush::{singularize, Crush, Hallucinator, SegmentSearch};
pub use dense::{
    build_dtr, build_sxfmr, generic_paraphrase_pairs, DenseRetriever, EncoderConfig, TextEncoder,
};
pub use targets::{
    PrecisionSwitch, RoutePrecision, RoutingResult, SchemaRouter, ShardCounters, Target, TargetId,
    TargetSet,
};
