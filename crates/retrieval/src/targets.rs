//! Retrieval targets and routing-result assembly.
//!
//! Per the paper's baseline setup (§4.1.5): tables are the retrieval
//! targets, represented by the flat normalized names of the table and its
//! columns; databases are ranked by the average score of their retrieved
//! tables; a candidate schema for NL2SQL is the top database plus its
//! retrieved tables.

use dbcopilot_graph::QuerySchema;
use dbcopilot_sqlengine::Collection;

/// A retrieval target: one table.
#[derive(Debug, Clone)]
pub struct Target {
    pub database: String,
    pub table: String,
    /// Flat text: "singer in concert singer id concert id …".
    pub text: String,
}

/// Index of a target in a [`TargetSet`].
pub type TargetId = usize;

/// All retrieval targets of a collection.
#[derive(Debug, Clone, Default)]
pub struct TargetSet {
    pub targets: Vec<Target>,
}

impl TargetSet {
    /// Build from a schema collection.
    pub fn from_collection(collection: &Collection) -> Self {
        let mut targets = Vec::with_capacity(collection.num_tables());
        for (db, t) in collection.tables() {
            let mut words = crate::text::tokenize(&t.name);
            for c in &t.columns {
                words.extend(crate::text::tokenize(&c.name));
            }
            targets.push(Target {
                database: db.name.clone(),
                table: t.name.clone(),
                text: words.join(" "),
            });
        }
        TargetSet { targets }
    }

    pub fn len(&self) -> usize {
        self.targets.len()
    }

    pub fn is_empty(&self) -> bool {
        self.targets.is_empty()
    }

    pub fn get(&self, id: TargetId) -> &Target {
        &self.targets[id]
    }
}

/// A ranked routing result: tables and databases, best first.
#[derive(Debug, Clone, Default)]
pub struct RoutingResult {
    /// `(database, table, score)`, descending score.
    pub tables: Vec<(String, String, f32)>,
    /// `(database, score)`, descending score.
    pub databases: Vec<(String, f32)>,
}

impl RoutingResult {
    /// Assemble from ranked target ids: databases ranked by the mean score
    /// of their retrieved tables.
    pub fn from_ranked(targets: &TargetSet, ranked: &[(TargetId, f32)]) -> Self {
        let tables: Vec<(String, String, f32)> = ranked
            .iter()
            .map(|&(id, s)| {
                let t = targets.get(id);
                (t.database.clone(), t.table.clone(), s)
            })
            .collect();
        // BTreeMap: the collect below feeds a sort whose f32 ties break
        // on name, but the accumulation order itself must not float with
        // hasher state either.
        let mut by_db: std::collections::BTreeMap<&str, (f32, usize)> =
            std::collections::BTreeMap::new();
        for (db, _, s) in &tables {
            let e = by_db.entry(db.as_str()).or_insert((0.0, 0));
            e.0 += s;
            e.1 += 1;
        }
        let mut databases: Vec<(String, f32)> =
            by_db.into_iter().map(|(db, (sum, n))| (db.to_string(), sum / n as f32)).collect();
        databases.sort_by(|a, b| {
            b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal).then(a.0.cmp(&b.0))
        });
        RoutingResult { tables, databases }
    }

    /// Ranked database names.
    pub fn database_names(&self) -> Vec<&str> {
        self.databases.iter().map(|(d, _)| d.as_str()).collect()
    }

    /// Top-k table identities as `(database, table)`.
    pub fn top_tables(&self, k: usize) -> Vec<(&str, &str)> {
        self.tables.iter().take(k).map(|(d, t, _)| (d.as_str(), t.as_str())).collect()
    }

    /// Candidate schemata for SQL generation: for each of the top databases,
    /// the retrieved tables belonging to it (up to `tables_per_schema`),
    /// in retrieval order.
    pub fn candidate_schemata(&self, num: usize, tables_per_schema: usize) -> Vec<QuerySchema> {
        let mut out = Vec::with_capacity(num);
        for (db, _) in self.databases.iter().take(num) {
            let tables: Vec<String> = self
                .tables
                .iter()
                .filter(|(d, _, _)| d == db)
                .take(tables_per_schema)
                .map(|(_, t, _)| t.clone())
                .collect();
            if !tables.is_empty() {
                out.push(QuerySchema::new(db.clone(), tables));
            }
        }
        out
    }
}

/// Numeric precision of the routing hot path.
///
/// `F32` is the reference path: exact heap-tensor arithmetic, bit-identical
/// to training-time inference. `I8` scores against per-row symmetric i8
/// quantized weights (`dbcopilot-nn`'s `quant` module) — faster and smaller,
/// at the cost of bounded rounding error in scores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RoutePrecision {
    /// Exact f32 scoring (default).
    #[default]
    F32,
    /// Per-row symmetric i8 scoring with i32 accumulation.
    I8,
}

/// Routers whose scoring precision can be switched after construction.
///
/// Implemented by methods with a quantized hot path (the DBCopilot router,
/// dense retrieval); switching to [`RoutePrecision::I8`] freezes quantized
/// weights on demand if none are attached yet.
pub trait PrecisionSwitch {
    /// Select the scoring precision for subsequent `route` calls.
    fn set_precision(&mut self, precision: RoutePrecision);

    /// The currently selected precision.
    fn precision(&self) -> RoutePrecision;
}

/// Per-shard serving counters reported by partitioned routers (the sharded
/// tier in `dbcopilot-core`): how many databases a shard owns, whether its
/// model is resident (lazy bundles decode shards on first touch), and how
/// many questions it has scored.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShardCounters {
    /// Databases owned by this shard.
    pub databases: usize,
    /// Whether the shard's model is decoded and resident in memory.
    pub loaded: bool,
    /// Questions this shard has scored so far.
    pub routes: u64,
}

/// Interface shared by all schema-routing methods (baselines and the
/// DBCopilot router adapter in `dbcopilot-eval`).
pub trait SchemaRouter {
    /// Method name as it appears in the paper's tables.
    fn name(&self) -> &str;

    /// Route one question: ranked tables/databases.
    fn route(&self, question: &str, top_tables: usize) -> RoutingResult;

    /// Per-shard counters, one entry per shard. Monolithic routers (the
    /// default) report none.
    fn shard_counters(&self) -> Vec<ShardCounters> {
        Vec::new()
    }
}

// Smart-pointer wrappers route through their pointee, so a boxed trait
// object (the harness) or a shared router (the serving layer) can be used
// anywhere a concrete method is expected.
impl<T: SchemaRouter + ?Sized> SchemaRouter for Box<T> {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn route(&self, question: &str, top_tables: usize) -> RoutingResult {
        (**self).route(question, top_tables)
    }

    fn shard_counters(&self) -> Vec<ShardCounters> {
        (**self).shard_counters()
    }
}

impl<T: SchemaRouter + ?Sized> SchemaRouter for std::sync::Arc<T> {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn route(&self, question: &str, top_tables: usize) -> RoutingResult {
        (**self).route(question, top_tables)
    }

    fn shard_counters(&self) -> Vec<ShardCounters> {
        (**self).shard_counters()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn target_set() -> TargetSet {
        TargetSet {
            targets: vec![
                Target {
                    database: "world".into(),
                    table: "country".into(),
                    text: "country code name".into(),
                },
                Target { database: "world".into(), table: "city".into(), text: "city name".into() },
                Target {
                    database: "car".into(),
                    table: "countries".into(),
                    text: "countries id".into(),
                },
            ],
        }
    }

    #[test]
    fn db_rank_by_mean_table_score() {
        let ts = target_set();
        let ranked = vec![(0, 2.0), (2, 1.5), (1, 1.0)];
        let r = RoutingResult::from_ranked(&ts, &ranked);
        // world mean = 1.5, car mean = 1.5; stable by sort → compare sets
        assert_eq!(r.databases.len(), 2);
        let ranked2 = vec![(0, 3.0), (1, 2.0), (2, 1.0)];
        let r2 = RoutingResult::from_ranked(&ts, &ranked2);
        assert_eq!(r2.database_names()[0], "world");
    }

    #[test]
    fn candidate_schemata_grouped_by_db() {
        let ts = target_set();
        let ranked = vec![(0, 3.0), (1, 2.0), (2, 1.0)];
        let r = RoutingResult::from_ranked(&ts, &ranked);
        let cands = r.candidate_schemata(2, 5);
        assert_eq!(cands.len(), 2);
        assert_eq!(cands[0].database, "world");
        assert_eq!(cands[0].tables, vec!["country".to_string(), "city".to_string()]);
        assert_eq!(cands[1].database, "car");
    }

    #[test]
    fn from_collection_flattens_names() {
        let mut c = Collection::new();
        let mut db = dbcopilot_sqlengine::DatabaseSchema::new("d");
        db.add_table(
            dbcopilot_sqlengine::TableSchema::new("singer_in_concert")
                .column("singer_id", dbcopilot_sqlengine::DataType::Int),
        );
        c.add_database(db);
        let ts = TargetSet::from_collection(&c);
        assert_eq!(ts.len(), 1);
        assert_eq!(ts.get(0).text, "singer in concert singer id");
    }
}
