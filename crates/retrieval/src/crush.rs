//! CRUSH baseline (Kothyari et al., 2023): LLM schema hallucination +
//! collective retrieval + relationship-aware reranking.
//!
//! The original instructs GPT to "hallucinate" a minimal schema for the
//! question, retrieves candidates for each hallucinated element, and reranks
//! the union using inter-element relationships. Offline substitution: the
//! hallucinator maps question phrases to plausible schema tokens using
//! general synonym knowledge (the lexicon — standing in for the LLM's world
//! knowledge), which is exactly the vocabulary-bridging role the LLM plays.
//! Retrieval stays per-element and relations enter only through post-hoc
//! reranking — the structural limitation the paper contrasts with
//! DBCopilot's joint retrieval.

use std::collections::BTreeMap;
use std::time::Duration;

use dbcopilot_graph::SchemaGraph;
use dbcopilot_synth::Lexicon;

use crate::targets::{RoutingResult, SchemaRouter, TargetId, TargetSet};
use crate::text::tokenize;

/// The simulated LLM hallucinator: question → schema-element strings.
pub struct Hallucinator {
    lex: Lexicon,
    /// Probability of hallucinating a wrong (random) concept per segment —
    /// the failure mode the CRUSH paper itself reports for GPT schema
    /// hallucination.
    pub noise: f64,
    seed: u64,
}

impl Default for Hallucinator {
    fn default() -> Self {
        Self::new()
    }
}

impl Hallucinator {
    pub fn new() -> Self {
        Hallucinator { lex: Lexicon::new(), noise: 0.3, seed: 0xc7 }
    }

    /// Produce hallucinated schema segments for a question: canonicalized
    /// content words plus their raw forms.
    pub fn hallucinate(&self, question: &str) -> Vec<String> {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(crate::text::fnv1a(question) ^ self.seed);
        let tokens = tokenize(question);
        let mut segments = Vec::new();
        // multi-word synonym resolution: try trigrams, bigrams, unigrams
        let mut i = 0;
        while i < tokens.len() {
            let mut matched = false;
            for n in (1..=3usize).rev() {
                if i + n > tokens.len() {
                    continue;
                }
                let phrase = tokens[i..i + n].join(" ");
                if let Some(canon) = self.lex.canonical_of(&phrase) {
                    segments.push(canon.replace('_', " "));
                    i += n;
                    matched = true;
                    break;
                }
                // singular fallback for plural entity mentions
                if n == 1 {
                    let singular = singularize(&phrase);
                    if let Some(canon) = self.lex.canonical_of(&singular) {
                        segments.push(canon.replace('_', " "));
                        i += 1;
                        matched = true;
                        break;
                    }
                }
            }
            if !matched {
                i += 1;
            }
        }
        // Hallucination noise: some segments come out as plausible but
        // wrong concepts.
        for seg in segments.iter_mut() {
            if rng.gen_bool(self.noise) {
                let e = &dbcopilot_synth::lexicon::ENTITIES
                    [rng.gen_range(0..dbcopilot_synth::lexicon::ENTITIES.len())];
                *seg = e.name.replace('_', " ");
            }
        }
        segments.dedup();
        if segments.is_empty() {
            // the LLM always emits something — fall back to the raw question
            segments.push(question.to_string());
        }
        segments
    }
}

pub use dbcopilot_synth::lexicon::singularize;

/// CRUSH wrapper over any base retriever.
pub struct Crush<R> {
    hallucinator: Hallucinator,
    inner: R,
    graph: SchemaGraph,
    label: String,
    /// Relation-rerank bonus weight.
    pub rerank_lambda: f32,
    /// Optional simulated LLM latency per query (Table 5 reproduces the
    /// cost of a commercial-LLM round trip; disabled by default).
    pub llm_latency: Option<Duration>,
}

/// The subset of retriever behavior CRUSH needs (per-segment search).
pub trait SegmentSearch {
    fn search_segment(&self, segment: &str, k: usize) -> Vec<(TargetId, f32)>;
    fn target_set(&self) -> &TargetSet;
}

impl SegmentSearch for crate::bm25::Bm25Index {
    fn search_segment(&self, segment: &str, k: usize) -> Vec<(TargetId, f32)> {
        self.search(segment, k)
    }

    fn target_set(&self) -> &TargetSet {
        self.targets()
    }
}

impl SegmentSearch for crate::dense::DenseRetriever {
    fn search_segment(&self, segment: &str, k: usize) -> Vec<(TargetId, f32)> {
        self.search(segment, k)
    }

    fn target_set(&self) -> &TargetSet {
        self.targets()
    }
}

impl<R: SegmentSearch> Crush<R> {
    pub fn new(inner: R, graph: SchemaGraph, label: &str) -> Self {
        Crush {
            hallucinator: Hallucinator::new(),
            inner,
            graph,
            label: label.to_string(),
            rerank_lambda: 0.15,
            llm_latency: None,
        }
    }
}

impl<R: SegmentSearch> SchemaRouter for Crush<R> {
    fn name(&self) -> &str {
        &self.label
    }

    fn route(&self, question: &str, top_tables: usize) -> RoutingResult {
        if let Some(lat) = self.llm_latency {
            std::thread::sleep(lat);
        }
        let segments = self.hallucinator.hallucinate(question);
        // Collective retrieval: max-normalized score sum over segments.
        // BTreeMap keeps every downstream step (candidate scan, rerank,
        // final collect) in doc-id order, independent of hasher state.
        let mut combined: BTreeMap<TargetId, f32> = BTreeMap::new();
        for seg in &segments {
            let hits = self.inner.search_segment(seg, 50);
            let max = hits.first().map(|&(_, s)| s).unwrap_or(1.0).max(1e-6);
            for (id, s) in hits {
                *combined.entry(id).or_insert(0.0) += s / max;
            }
        }
        // Also retrieve with the whole question so segment misses degrade
        // gracefully (CRUSH unions the raw-query results too).
        for (id, s) in self.inner.search_segment(question, 50) {
            let e = combined.entry(id).or_insert(0.0);
            *e += 0.5 * s / (s.abs().max(1e-6));
        }

        // Relationship-aware rerank: bonus per graph edge to another
        // candidate table.
        let targets = self.inner.target_set();
        let candidate_nodes: BTreeMap<TargetId, dbcopilot_graph::NodeId> = combined
            .keys()
            .filter_map(|&id| {
                let t = targets.get(id);
                self.graph.table_node(&t.database, &t.table).map(|n| (id, n))
            })
            .collect();
        let node_set: std::collections::BTreeSet<dbcopilot_graph::NodeId> =
            candidate_nodes.values().copied().collect();
        let mut ranked: Vec<(TargetId, f32)> = combined
            .into_iter()
            .map(|(id, score)| {
                let bonus = candidate_nodes
                    .get(&id)
                    .map(|n| {
                        self.graph
                            .related_tables(*n)
                            .iter()
                            .filter(|r| node_set.contains(r))
                            .count() as f32
                    })
                    .unwrap_or(0.0);
                (id, score + self.rerank_lambda * bonus)
            })
            .collect();
        ranked.sort_by(|a, b| {
            b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal).then(a.0.cmp(&b.0))
        });
        ranked.truncate(top_tables);
        RoutingResult::from_ranked(targets, &ranked)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bm25::{Bm25Index, Bm25Params};
    use dbcopilot_sqlengine::{Collection, DataType, DatabaseSchema, TableSchema};

    fn collection() -> Collection {
        let mut c = Collection::new();
        let mut world = DatabaseSchema::new("world");
        world.add_table(
            TableSchema::new("country")
                .column("code", DataType::Text)
                .column("name", DataType::Text)
                .primary(0),
        );
        world.add_table(
            TableSchema::new("countrylanguage")
                .column("countrycode", DataType::Text)
                .column("language", DataType::Text)
                .foreign("countrycode", "country", "code"),
        );
        let mut car = DatabaseSchema::new("car");
        car.add_table(
            TableSchema::new("continents")
                .column("contid", DataType::Int)
                .column("continent", DataType::Text),
        );
        c.add_database(world);
        c.add_database(car);
        c
    }

    fn router() -> Crush<Bm25Index> {
        let coll = collection();
        let targets = TargetSet::from_collection(&coll);
        let idx = Bm25Index::build(targets, Bm25Params::default());
        let graph = SchemaGraph::build(&coll);
        Crush::new(idx, graph, "CRUSH_BM25")
    }

    #[test]
    fn hallucinator_canonicalizes_synonyms() {
        let h = Hallucinator::new();
        let segs = h.hallucinate("What is the homeland of each vocalist?");
        assert!(segs.contains(&"country".to_string()), "{segs:?}");
        assert!(segs.contains(&"singer".to_string()), "{segs:?}");
    }

    #[test]
    fn hallucinator_handles_plurals() {
        let h = Hallucinator::new();
        let segs = h.hallucinate("how many cities are there");
        assert!(segs.contains(&"city".to_string()), "{segs:?}");
    }

    #[test]
    fn relation_rerank_prefers_connected_tables() {
        let r = router();
        let result = r.route("Which language is spoken in each country?", 10);
        // country & countrylanguage are PF-related, so world should outrank car
        assert_eq!(result.database_names()[0], "world");
        let tops = result.top_tables(2);
        assert!(tops.contains(&("world", "countrylanguage")));
        assert!(tops.contains(&("world", "country")));
    }

    #[test]
    fn empty_hallucination_falls_back_to_question() {
        let h = Hallucinator::new();
        let segs = h.hallucinate("xyzzy plugh");
        assert_eq!(segs.len(), 1);
    }
}
