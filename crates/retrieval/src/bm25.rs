//! Okapi BM25 over an inverted index (the paper's sparse baseline).

use std::collections::{BTreeMap, HashMap};

use crate::targets::{RoutingResult, SchemaRouter, TargetId, TargetSet};
use crate::text::tokenize;

/// BM25 parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bm25Params {
    pub k1: f32,
    pub b: f32,
}

impl Default for Bm25Params {
    fn default() -> Self {
        Bm25Params { k1: 1.2, b: 0.75 }
    }
}

/// An inverted index with BM25 scoring.
pub struct Bm25Index {
    targets: TargetSet,
    params: Bm25Params,
    /// term → postings `(doc, term_frequency)`.
    postings: HashMap<String, Vec<(TargetId, u32)>>,
    doc_len: Vec<u32>,
    avg_len: f32,
    label: String,
}

impl Bm25Index {
    /// Build the index over a target set.
    pub fn build(targets: TargetSet, params: Bm25Params) -> Self {
        Self::build_labeled(targets, params, "BM25")
    }

    /// Build with a custom display label (e.g. "BM25 (ft)").
    pub fn build_labeled(targets: TargetSet, params: Bm25Params, label: &str) -> Self {
        // Tokenization and term counting dominate the build: run them
        // data-parallel per document, then fold the postings serially in
        // document order so every term's postings list stays sorted by
        // document id (exactly as the serial build produced it).
        let per_doc: Vec<(u32, Vec<(String, u32)>)> =
            dbcopilot_runtime::parallel_map(&targets.targets, |_, t| {
                let toks = tokenize(&t.text);
                let mut tf: BTreeMap<&str, u32> = BTreeMap::new();
                for tok in &toks {
                    *tf.entry(tok.as_str()).or_insert(0) += 1;
                }
                // BTreeMap iteration is term-sorted, so the per-doc term
                // list (and everything folded from it) is order-stable.
                let tf: Vec<(String, u32)> =
                    tf.into_iter().map(|(t, f)| (t.to_string(), f)).collect();
                (toks.len() as u32, tf)
            });
        let mut postings: HashMap<String, Vec<(TargetId, u32)>> = HashMap::new();
        let mut doc_len = Vec::with_capacity(targets.len());
        for (id, (len, tf)) in per_doc.into_iter().enumerate() {
            doc_len.push(len);
            for (term, f) in tf {
                postings.entry(term).or_default().push((id, f));
            }
        }
        let avg_len = if doc_len.is_empty() {
            0.0
        } else {
            doc_len.iter().sum::<u32>() as f32 / doc_len.len() as f32
        };
        Bm25Index { targets, params, postings, doc_len, avg_len, label: label.to_string() }
    }

    pub fn num_docs(&self) -> usize {
        self.targets.len()
    }

    /// Index disk footprint in bytes (Table 5 "Disk"): term bytes plus 8
    /// bytes per posting plus 4 per document length — i.e. a binary
    /// encoding, matching the `DBC1` accounting the learned methods use.
    pub fn size_bytes(&self) -> usize {
        let mut sz = self.doc_len.len() * 4;
        // dbc-lint: allow(hashmap-iter-order): a commutative sum over all
        // entries — the fold's order cannot reach the result. `postings`
        // stays a HashMap for O(1) term lookup in the search hot path.
        for (term, posts) in &self.postings {
            sz += term.len() + posts.len() * 8;
        }
        sz
    }

    /// Score all documents for a query, returning the top `k`.
    pub fn search(&self, query: &str, k: usize) -> Vec<(TargetId, f32)> {
        let n = self.num_docs() as f32;
        // BTreeMap: score accumulation *and* the final collect stay in
        // doc-id order, independent of hasher state.
        let mut scores: BTreeMap<TargetId, f32> = BTreeMap::new();
        for term in tokenize(query) {
            let Some(posts) = self.postings.get(&term) else { continue };
            let df = posts.len() as f32;
            let idf = ((n - df + 0.5) / (df + 0.5) + 1.0).ln();
            for &(doc, tf) in posts {
                let tf = tf as f32;
                let dl = self.doc_len[doc] as f32;
                let denom =
                    tf + self.params.k1 * (1.0 - self.params.b + self.params.b * dl / self.avg_len);
                let s = idf * tf * (self.params.k1 + 1.0) / denom;
                *scores.entry(doc).or_insert(0.0) += s;
            }
        }
        let mut ranked: Vec<(TargetId, f32)> = scores.into_iter().collect();
        ranked.sort_by(|a, b| {
            b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal).then(a.0.cmp(&b.0))
        });
        ranked.truncate(k);
        ranked
    }

    pub fn targets(&self) -> &TargetSet {
        &self.targets
    }
}

impl SchemaRouter for Bm25Index {
    fn name(&self) -> &str {
        &self.label
    }

    fn route(&self, question: &str, top_tables: usize) -> RoutingResult {
        let ranked = self.search(question, top_tables);
        RoutingResult::from_ranked(&self.targets, &ranked)
    }
}

/// Grid-search `k1`/`b` on labeled data (the paper's "fine-tuned BM25"):
/// maximizes table recall@k of the gold tables over the training questions.
///
/// Every grid point builds and evaluates its own index, so the search runs
/// data-parallel over the grid; the winner is picked serially in grid order
/// (first strict improvement), matching the serial search exactly.
pub fn tune_bm25(
    targets: &TargetSet,
    train: &[(String, Vec<(String, String)>)],
    k: usize,
) -> Bm25Params {
    let k1_grid = [0.6f32, 0.9, 1.2, 1.6, 2.0];
    let b_grid = [0.3f32, 0.5, 0.75, 0.9];
    let grid: Vec<Bm25Params> =
        k1_grid.iter().flat_map(|&k1| b_grid.iter().map(move |&b| Bm25Params { k1, b })).collect();
    let recalls = dbcopilot_runtime::parallel_map(&grid, |_, &params| {
        let idx = Bm25Index::build(targets.clone(), params);
        let mut recall_sum = 0.0;
        for (q, gold) in train {
            let got = idx.search(q, k);
            let hits = gold
                .iter()
                .filter(|(gd, gt)| {
                    got.iter().any(|&(id, _)| {
                        let t = targets.get(id);
                        t.database.eq_ignore_ascii_case(gd) && t.table.eq_ignore_ascii_case(gt)
                    })
                })
                .count();
            recall_sum += hits as f32 / gold.len().max(1) as f32;
        }
        recall_sum / train.len().max(1) as f32
    });
    let mut best = (Bm25Params::default(), -1.0f32);
    for (&params, r) in grid.iter().zip(recalls) {
        if r > best.1 {
            best = (params, r);
        }
    }
    best.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::targets::Target;

    fn targets() -> TargetSet {
        TargetSet {
            targets: vec![
                Target {
                    database: "world".into(),
                    table: "country".into(),
                    text: "country code name continent region".into(),
                },
                Target {
                    database: "world".into(),
                    table: "countrylanguage".into(),
                    text: "countrylanguage countrycode language official".into(),
                },
                Target {
                    database: "concert_singer".into(),
                    table: "singer".into(),
                    text: "singer singer id name age country".into(),
                },
            ],
        }
    }

    #[test]
    fn exact_term_match_ranks_first() {
        let idx = Bm25Index::build(targets(), Bm25Params::default());
        let r = idx.search("language spoken", 10);
        assert!(!r.is_empty());
        assert_eq!(idx.targets().get(r[0].0).table, "countrylanguage");
    }

    #[test]
    fn no_match_returns_empty() {
        let idx = Bm25Index::build(targets(), Bm25Params::default());
        assert!(idx.search("zorgon blaster", 10).is_empty());
    }

    #[test]
    fn rare_terms_outweigh_common() {
        let idx = Bm25Index::build(targets(), Bm25Params::default());
        // "country" appears in several docs; "age" only in singer
        let r = idx.search("age of country", 10);
        assert_eq!(idx.targets().get(r[0].0).table, "singer");
    }

    #[test]
    fn route_aggregates_to_databases() {
        let idx = Bm25Index::build(targets(), Bm25Params::default());
        let r = idx.route("official language of country", 10);
        assert_eq!(r.database_names()[0], "world");
    }

    #[test]
    fn top_k_truncates() {
        let idx = Bm25Index::build(targets(), Bm25Params::default());
        let r = idx.search("country name", 1);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn tuning_returns_grid_point() {
        let ts = targets();
        let train = vec![
            (
                "which language is spoken".to_string(),
                vec![("world".to_string(), "countrylanguage".to_string())],
            ),
            (
                "age of singers".to_string(),
                vec![("concert_singer".to_string(), "singer".to_string())],
            ),
        ];
        let p = tune_bm25(&ts, &train, 5);
        assert!([0.6, 0.9, 1.2, 1.6, 2.0].contains(&p.k1));
        assert!([0.3, 0.5, 0.75, 0.9].contains(&p.b));
    }

    #[test]
    fn size_bytes_positive() {
        let idx = Bm25Index::build(targets(), Bm25Params::default());
        assert!(idx.size_bytes() > 0);
    }
}
