//! Dense retrieval: a hashed bag-of-words text encoder trained
//! contrastively (InfoNCE with in-batch negatives).
//!
//! Two baselines share this machinery (paper §4.1.3):
//!
//! * **SXFMR** — a *generic* sentence encoder (the paper uses
//!   `all-mpnet-base-v2`). Offline analog: the encoder is contrastively
//!   pre-trained on general paraphrase pairs (synonym ↔ canonical phrase),
//!   giving it semantic-match ability without any corpus-specific training.
//! * **DTR** — the same architecture fine-tuned on (question, table-text)
//!   pairs, like the dense table retriever of Herzig et al. (2021).

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use dbcopilot_nn::quant::{QuantizedMatrix, QuantizedVec};
use dbcopilot_nn::{AdamW, Embedding, ParamStore, Tape, Tensor};

use crate::targets::{PrecisionSwitch, RoutePrecision, RoutingResult, SchemaRouter, TargetSet};
use crate::text::hashed_features;

/// Encoder and training hyper-parameters.
#[derive(Debug, Clone)]
pub struct EncoderConfig {
    pub dim: usize,
    pub buckets: usize,
    pub lr: f32,
    pub epochs: usize,
    pub batch: usize,
    /// Softmax temperature for InfoNCE (logits are divided by this).
    pub temperature: f32,
    pub seed: u64,
}

impl Default for EncoderConfig {
    fn default() -> Self {
        EncoderConfig {
            dim: 48,
            buckets: 1 << 13,
            lr: 5e-3,
            epochs: 6,
            batch: 16,
            temperature: 0.1,
            seed: 0x5e,
        }
    }
}

/// A bag-of-hashed-words text encoder.
pub struct TextEncoder {
    store: ParamStore,
    emb: Embedding,
    cfg: EncoderConfig,
}

impl TextEncoder {
    pub fn new(cfg: EncoderConfig) -> Self {
        let mut store = ParamStore::new();
        let mut rng = dbcopilot_nn::init::seeded_rng(cfg.seed);
        let emb = Embedding::new(&mut store, "enc", cfg.buckets, cfg.dim, &mut rng);
        TextEncoder { store, emb, cfg }
    }

    /// Embed text to an L2-normalized vector `[1, dim]`.
    pub fn embed(&self, text: &str) -> Tensor {
        let feats = hashed_features(text, self.cfg.buckets);
        let bag = self.emb.infer_bag(&self.store, &feats);
        let n = bag.norm().max(1e-8);
        bag.scale(1.0 / n)
    }

    /// Exact binary-serialized model size in bytes (what the encoder would
    /// occupy on disk in the `DBC1` codec — the same accounting the router
    /// uses, so Table 5's "Disk" column compares like with like).
    pub fn size_bytes(&self) -> usize {
        dbcopilot_nn::codec::encoded_store_len(&self.store)
    }

    /// Contrastive training on positive text pairs with in-batch negatives.
    /// Returns the mean loss of the final epoch.
    ///
    /// Feature hashing (tokenization-heavy) is precomputed data-parallel
    /// over the whole pair list and reused every epoch; the per-batch tape
    /// stays serial because InfoNCE couples all in-batch examples through
    /// the shared similarity matrix.
    pub fn train_pairs(&mut self, pairs: &[(String, String)]) -> f32 {
        assert!(!pairs.is_empty(), "no training pairs");
        let cfg = self.cfg.clone();
        let feats: Vec<(Vec<usize>, Vec<usize>)> =
            dbcopilot_runtime::parallel_map(pairs, |_, (q, d)| {
                (hashed_features(q, cfg.buckets), hashed_features(d, cfg.buckets))
            });
        let mut rng = SmallRng::seed_from_u64(cfg.seed.wrapping_add(7));
        let mut opt = AdamW::new(cfg.lr);
        let mut order: Vec<usize> = (0..pairs.len()).collect();
        let mut last_epoch_loss = 0.0;
        for _epoch in 0..cfg.epochs {
            order.shuffle(&mut rng);
            let mut epoch_loss = 0.0;
            let mut batches = 0;
            for chunk in order.chunks(cfg.batch) {
                if chunk.len() < 2 {
                    continue; // in-batch negatives need ≥2 pairs
                }
                let mut tape = Tape::new();
                let mut qs = Vec::with_capacity(chunk.len());
                let mut ds = Vec::with_capacity(chunk.len());
                for &i in chunk {
                    let (qf, df) = &feats[i];
                    let qv = self.emb.forward_bag(&mut tape, &self.store, qf);
                    let dv = self.emb.forward_bag(&mut tape, &self.store, df);
                    qs.push(tape.l2_normalize(qv));
                    ds.push(tape.l2_normalize(dv));
                }
                let qm = tape.stack_rows(&qs);
                let dm = tape.stack_rows(&ds);
                let sims = tape.matmul_nt(qm, dm);
                let logits = tape.scale(sims, 1.0 / cfg.temperature);
                let targets: Vec<usize> = (0..chunk.len()).collect();
                let loss = tape.cross_entropy_rows(logits, &targets);
                epoch_loss += tape.value(loss).get(0, 0);
                batches += 1;
                tape.backward(loss);
                tape.collect_grads(&mut self.store);
                self.store.clip_grad_norm(5.0);
                opt.step(&mut self.store);
            }
            last_epoch_loss = epoch_loss / batches.max(1) as f32;
        }
        last_epoch_loss
    }
}

/// Frozen i8 state for the dense hot path: the quantized encoder embedding
/// table and the quantized document matrix.
struct QuantIndex {
    /// Encoder embedding rows as stored, `[buckets, dim]`.
    emb: QuantizedMatrix,
    /// Normalized document vectors, `[num_targets, dim]` — the reduction
    /// dimension is already contiguous, so scoring is one i8 dot per target.
    docs: QuantizedMatrix,
}

/// A dense retriever: encoder + encoded target matrix.
pub struct DenseRetriever {
    encoder: TextEncoder,
    targets: TargetSet,
    /// `[num_targets, dim]` normalized document vectors.
    doc_matrix: Tensor,
    label: String,
    precision: RoutePrecision,
    quant: Option<QuantIndex>,
}

impl DenseRetriever {
    /// Encode and index all targets (embedding runs data-parallel; rows are
    /// assembled in target order).
    pub fn index(encoder: TextEncoder, targets: TargetSet, label: &str) -> Self {
        let dim = encoder.cfg.dim;
        let rows = dbcopilot_runtime::parallel_map(&targets.targets, |_, t| encoder.embed(&t.text));
        let mut data = Vec::with_capacity(targets.len() * dim);
        for v in &rows {
            data.extend_from_slice(v.as_slice());
        }
        let doc_matrix = Tensor::from_vec(targets.len(), dim, data);
        DenseRetriever {
            encoder,
            targets,
            doc_matrix,
            label: label.to_string(),
            precision: RoutePrecision::F32,
            quant: None,
        }
    }

    /// Cosine-similarity search at the selected precision.
    pub fn search(&self, query: &str, k: usize) -> Vec<(usize, f32)> {
        let scores = match (self.precision, &self.quant) {
            (RoutePrecision::I8, Some(q)) => self.scores_i8(q, query),
            _ => self.scores_f32(query),
        };
        let mut ranked: Vec<(usize, f32)> = scores.into_iter().enumerate().collect();
        ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        ranked.truncate(k);
        ranked
    }

    fn scores_f32(&self, query: &str) -> Vec<f32> {
        let q = self.encoder.embed(query);
        let scores = self.doc_matrix.matmul(&q.transpose()); // [n,1]
        (0..self.targets.len()).map(|i| scores.get(i, 0)).collect()
    }

    fn scores_i8(&self, qi: &QuantIndex, query: &str) -> Vec<f32> {
        // Mirror `TextEncoder::embed` against the quantized embedding table:
        // mean of the hashed-feature rows, then L2 normalization.
        let dim = self.encoder.cfg.dim;
        let feats = hashed_features(query, self.encoder.cfg.buckets);
        let mut bag = vec![0.0f32; dim];
        for &f in &feats {
            let s = qi.emb.scale(f);
            for (acc, &q) in bag.iter_mut().zip(qi.emb.row(f)) {
                *acc += s * q as f32;
            }
        }
        if !feats.is_empty() {
            let inv = 1.0 / feats.len() as f32;
            for v in &mut bag {
                *v *= inv;
            }
        }
        let norm = bag.iter().map(|v| v * v).sum::<f32>().sqrt().max(1e-8);
        for v in &mut bag {
            *v /= norm;
        }
        let qv = QuantizedVec::quantize(&bag);
        let mut out = Vec::new();
        qi.docs.matvec_into(&qv, &mut out);
        out
    }

    pub fn targets(&self) -> &TargetSet {
        &self.targets
    }

    /// Index + model disk footprint in bytes: the binary-serialized encoder
    /// plus the document matrix at 4 raw bytes per `f32`.
    pub fn size_bytes(&self) -> usize {
        self.encoder.size_bytes() + self.doc_matrix.len() * 4
    }
}

impl PrecisionSwitch for DenseRetriever {
    fn set_precision(&mut self, precision: RoutePrecision) {
        if precision == RoutePrecision::I8 && self.quant.is_none() {
            let w = self.encoder.store.value(self.encoder.emb.weight);
            self.quant = Some(QuantIndex {
                emb: QuantizedMatrix::from_tensor(w),
                docs: QuantizedMatrix::from_tensor(&self.doc_matrix),
            });
        }
        self.precision = precision;
    }

    fn precision(&self) -> RoutePrecision {
        self.precision
    }
}

impl SchemaRouter for DenseRetriever {
    fn name(&self) -> &str {
        &self.label
    }

    fn route(&self, question: &str, top_tables: usize) -> RoutingResult {
        let ranked = self.search(question, top_tables);
        RoutingResult::from_ranked(&self.targets, &ranked)
    }
}

/// Generic paraphrase pairs from the lexicon — the SXFMR "pre-training"
/// corpus: every surface form of every concept is paired with every other
/// surface form of the same concept.
pub fn generic_paraphrase_pairs() -> Vec<(String, String)> {
    let lex = dbcopilot_synth::Lexicon::new();
    let mut pairs = Vec::new();
    let mut add_all = |surfaces: Vec<String>| {
        for i in 0..surfaces.len() {
            for j in 0..surfaces.len() {
                if i != j {
                    pairs.push((surfaces[i].clone(), surfaces[j].clone()));
                }
            }
        }
    };
    for e in dbcopilot_synth::lexicon::ENTITIES {
        add_all(lex.entity_surfaces(e.name));
    }
    for a in dbcopilot_synth::lexicon::ATTRIBUTES {
        add_all(lex.attr_surfaces(a.name));
    }
    pairs
}

/// Build the SXFMR baseline: generic paraphrase pre-training, then index.
pub fn build_sxfmr(targets: TargetSet, cfg: EncoderConfig) -> DenseRetriever {
    let mut enc = TextEncoder::new(cfg);
    let pairs = generic_paraphrase_pairs();
    enc.train_pairs(&pairs);
    DenseRetriever::index(enc, targets, "SXFMR")
}

/// Build the DTR baseline: fine-tune on (question, gold-table-text) pairs
/// (synthetic data, consistent with DBCopilot's training).
pub fn build_dtr(
    targets: TargetSet,
    train: &[(String, Vec<(String, String)>)],
    cfg: EncoderConfig,
) -> DenseRetriever {
    let mut enc = TextEncoder::new(cfg);
    // Start from generic paraphrase knowledge, as DTR starts from a PLM.
    enc.train_pairs(&generic_paraphrase_pairs());
    // Fine-tune: one pair per (question, gold table).
    let mut pairs = Vec::new();
    for (q, gold) in train {
        for (db, table) in gold {
            if let Some(t) = targets.targets.iter().find(|t| {
                t.database.eq_ignore_ascii_case(db) && t.table.eq_ignore_ascii_case(table)
            }) {
                pairs.push((q.clone(), t.text.clone()));
            }
        }
    }
    if !pairs.is_empty() {
        enc.train_pairs(&pairs);
    }
    DenseRetriever::index(enc, targets, "DTR")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::targets::Target;

    fn tiny_targets() -> TargetSet {
        TargetSet {
            targets: vec![
                Target {
                    database: "world".into(),
                    table: "country".into(),
                    text: "country code name continent".into(),
                },
                Target {
                    database: "concert_singer".into(),
                    table: "singer".into(),
                    text: "singer name age genre".into(),
                },
                Target {
                    database: "cinema".into(),
                    table: "movie".into(),
                    text: "movie title year rating".into(),
                },
            ],
        }
    }

    fn fast_cfg() -> EncoderConfig {
        EncoderConfig { dim: 24, buckets: 1 << 10, epochs: 4, batch: 8, ..Default::default() }
    }

    #[test]
    fn untrained_encoder_is_normalized() {
        let enc = TextEncoder::new(fast_cfg());
        let v = enc.embed("hello world");
        assert!((v.norm() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn contrastive_training_reduces_loss() {
        let mut enc = TextEncoder::new(fast_cfg());
        let pairs: Vec<(String, String)> = vec![
            ("vocalist", "singer"),
            ("film", "movie"),
            ("nation", "country"),
            ("automobile", "car"),
            ("pupil", "student"),
            ("teacher", "instructor"),
            ("city", "town"),
            ("ship", "vessel"),
        ]
        .into_iter()
        .map(|(a, b)| (a.to_string(), b.to_string()))
        .collect();
        let first = {
            let mut fresh = TextEncoder::new(fast_cfg());
            let mut one_epoch = fast_cfg();
            one_epoch.epochs = 1;
            fresh.cfg = one_epoch;
            fresh.train_pairs(&pairs)
        };
        let last = enc.train_pairs(&pairs);
        assert!(last < first, "loss should fall: first={first} last={last}");
    }

    #[test]
    fn trained_encoder_aligns_synonyms() {
        let mut enc = TextEncoder::new(fast_cfg());
        let pairs: Vec<(String, String)> = (0..20)
            .flat_map(|_| {
                vec![
                    ("vocalist".to_string(), "singer".to_string()),
                    ("film director".to_string(), "movie maker".to_string()),
                    ("nation".to_string(), "country".to_string()),
                ]
            })
            .collect();
        enc.train_pairs(&pairs);
        let v_syn = enc.embed("vocalist");
        let v_canon = enc.embed("singer");
        let v_other = enc.embed("country");
        assert!(v_syn.cosine(&v_canon) > v_syn.cosine(&v_other));
    }

    #[test]
    fn dense_retriever_ranks_lexical_match_first() {
        let enc = {
            let mut e = TextEncoder::new(fast_cfg());
            // identity training so same-word matching works
            let pairs: Vec<(String, String)> =
                tiny_targets().targets.iter().map(|t| (t.text.clone(), t.text.clone())).collect();
            let reps: Vec<(String, String)> = (0..10).flat_map(|_| pairs.clone()).collect();
            e.train_pairs(&reps);
            e
        };
        let r = DenseRetriever::index(enc, tiny_targets(), "test");
        let ranked = r.search("age of singer", 3);
        assert_eq!(r.targets().get(ranked[0].0).table, "singer");
    }

    #[test]
    fn i8_search_preserves_top_hit_and_score_accuracy() {
        let mut r = build_sxfmr(tiny_targets(), fast_cfg());
        let exact = r.search("recording artist age", 3);
        r.set_precision(RoutePrecision::I8);
        assert_eq!(r.precision(), RoutePrecision::I8);
        let quant = r.search("recording artist age", 3);
        assert_eq!(exact[0].0, quant[0].0, "top hit must survive quantization");
        for (&(i, se), &(j, sq)) in exact.iter().zip(&quant) {
            assert_eq!(i, j, "i8 ranking diverged");
            // doc vectors and query are unit-norm, so cosine error stays
            // within the per-dot quantization bound
            assert!((se - sq).abs() < 0.05, "score drifted: {se} vs {sq}");
        }
        // switching back restores exact scoring
        r.set_precision(RoutePrecision::F32);
        assert_eq!(r.search("recording artist age", 3), exact);
    }

    #[test]
    fn sxfmr_handles_synonym_queries() {
        let r = build_sxfmr(tiny_targets(), fast_cfg());
        let ranked = r.search("recording artist age", 3);
        assert_eq!(r.targets().get(ranked[0].0).table, "singer", "synonym should hit singer");
    }

    #[test]
    fn generic_pairs_nonempty_and_symmetric() {
        let pairs = generic_paraphrase_pairs();
        assert!(pairs.len() > 100);
        assert!(pairs.iter().any(|(a, b)| a == "vocalist" && b == "singer"));
        assert!(pairs.iter().any(|(a, b)| a == "singer" && b == "vocalist"));
    }
}
