//! Shared text processing: tokenization and feature hashing.

/// Lowercase word tokens; identifiers are split on `_`, punctuation is
/// dropped ("flat normalized names", paper §4.1.5), and plural suffixes are
/// stripped (light stemming, standard IR preprocessing — "singers" and
/// "singer" must match lexically for BM25 to behave like the paper's).
pub fn tokenize(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    for c in text.chars() {
        if c.is_alphanumeric() {
            cur.push(c.to_ascii_lowercase());
        } else if !cur.is_empty() {
            out.push(stem(std::mem::take(&mut cur)));
        }
    }
    if !cur.is_empty() {
        out.push(stem(cur));
    }
    out
}

/// Strip plural suffixes from words longer than 3 characters.
fn stem(w: String) -> String {
    if w.len() <= 3 {
        return w;
    }
    if let Some(t) = w.strip_suffix("ies") {
        return format!("{t}y");
    }
    if let Some(t) = w.strip_suffix("ses") {
        return format!("{t}s");
    }
    if let Some(t) = w.strip_suffix("ches") {
        return format!("{t}ch");
    }
    if let Some(t) = w.strip_suffix("shes") {
        return format!("{t}sh");
    }
    if let Some(t) = w.strip_suffix("xes") {
        return format!("{t}x");
    }
    if w.ends_with("ss") || w.ends_with("us") || w.ends_with("is") {
        return w;
    }
    if let Some(t) = w.strip_suffix('s') {
        return t.to_string();
    }
    w
}

/// FNV-1a 64-bit hash (stable across runs/platforms).
pub fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Hash tokens into `buckets` feature ids (the hashing trick): handles
/// unseen words without a fixed vocabulary, like subword tokenizers do.
pub fn hash_tokens(tokens: &[String], buckets: usize) -> Vec<usize> {
    tokens.iter().map(|t| (fnv1a(t) % buckets as u64) as usize).collect()
}

/// Tokenize then hash.
pub fn hashed_features(text: &str, buckets: usize) -> Vec<usize> {
    hash_tokens(&tokenize(text), buckets)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenize_splits_identifiers() {
        assert_eq!(tokenize("singer_in_concert"), vec!["singer", "in", "concert"]);
        assert_eq!(tokenize("What's the name?"), vec!["what", "s", "the", "name"]);
    }

    #[test]
    fn tokenize_stems_plurals() {
        assert_eq!(tokenize("singers"), vec!["singer"]);
        assert_eq!(tokenize("cities"), vec!["city"]);
        assert_eq!(tokenize("matches"), vec!["match"]);
        assert_eq!(tokenize("status"), vec!["status"]);
        assert_eq!(tokenize("is"), vec!["is"]);
    }

    #[test]
    fn tokenize_keeps_numbers() {
        assert_eq!(tokenize("year > 2014"), vec!["year", "2014"]);
    }

    #[test]
    fn hashing_is_deterministic_and_bounded() {
        let a = hashed_features("singer vocalist", 1024);
        let b = hashed_features("singer vocalist", 1024);
        assert_eq!(a, b);
        assert!(a.iter().all(|&i| i < 1024));
    }

    #[test]
    fn different_words_usually_differ() {
        let a = fnv1a("singer");
        let b = fnv1a("concert");
        assert_ne!(a, b);
    }
}
