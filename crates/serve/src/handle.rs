//! Generation-versioned router slot for zero-downtime hot swap.
//!
//! [`RouterHandle`] is a hand-rolled ArcSwap on std: a rank-ordered
//! mutex (`OrderedMutex<Arc<_>>`) slot
//! whose readers clone the `Arc` under the lock ([`RouterHandle::lease`] —
//! a few nanoseconds) and then route entirely outside it. Publishing a new
//! router ([`RouterHandle::publish`]) swaps the slot, bumps the generation
//! counter, and *drains*: it blocks until every request leased on the old
//! generation has finished. No request is ever dropped — in-flight requests
//! complete on the router they leased (the old `Arc` keeps it alive), and
//! requests arriving after the swap lease the new one.

use dbcopilot_runtime::{lock_rank, OrderedMutex};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One published router generation: the router, its generation number, and
/// how many leased requests are still using it.
struct Generation<R> {
    router: Arc<R>,
    number: u64,
    in_flight: AtomicU64,
}

/// A shared, swappable slot holding the currently-published router.
pub struct RouterHandle<R> {
    current: OrderedMutex<Arc<Generation<R>>>,
}

/// A leased reference to one router generation. The lease counts toward the
/// generation's in-flight total until dropped, which is what lets
/// [`RouterHandle::publish`] know when the old generation has drained.
pub struct RouterLease<R> {
    generation: Arc<Generation<R>>,
}

impl<R> RouterLease<R> {
    /// The leased router.
    pub fn router(&self) -> &R {
        &self.generation.router
    }

    /// The generation number this lease pinned.
    pub fn generation(&self) -> u64 {
        self.generation.number
    }
}

impl<R> Drop for RouterLease<R> {
    fn drop(&mut self) {
        self.generation.in_flight.fetch_sub(1, Ordering::Release);
    }
}

impl<R> RouterHandle<R> {
    /// A handle starting at generation 1.
    pub fn new(router: Arc<R>) -> Self {
        RouterHandle {
            current: OrderedMutex::new(
                "current",
                lock_rank::CURRENT,
                Arc::new(Generation { router, number: 1, in_flight: AtomicU64::new(0) }),
            ),
        }
    }

    /// Lease the current router for one request. The in-flight count is
    /// bumped *under the slot lock*, so a concurrent [`publish`] either
    /// sees this lease in its drain or happens entirely before it — never
    /// in between.
    ///
    /// [`publish`]: RouterHandle::publish
    pub fn lease(&self) -> RouterLease<R> {
        let generation = Arc::clone(&self.current.lock());
        generation.in_flight.fetch_add(1, Ordering::Acquire);
        RouterLease { generation }
    }

    /// The currently-published router.
    pub fn current(&self) -> Arc<R> {
        Arc::clone(&self.current.lock().router)
    }

    /// The current generation number (starts at 1, +1 per publish).
    pub fn generation(&self) -> u64 {
        self.current.lock().number
    }

    /// Atomically publish `router` as the next generation, then block until
    /// every request leased on the *old* generation has finished. Returns
    /// the new generation number.
    ///
    /// Zero requests are dropped: old-generation requests complete on the
    /// router they leased, and every lease taken after the swap is on the
    /// new generation (so the drain terminates regardless of new traffic).
    pub fn publish(&self, router: Arc<R>) -> u64 {
        let old = {
            let mut current = self.current.lock();
            let next = Arc::new(Generation {
                router,
                number: current.number + 1,
                in_flight: AtomicU64::new(0),
            });
            std::mem::replace(&mut *current, next)
        };
        let published = old.number + 1;
        while old.in_flight.load(Ordering::Acquire) > 0 {
            std::thread::yield_now();
        }
        published
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lease_pins_a_generation_and_publish_advances_it() {
        let handle = RouterHandle::new(Arc::new(41));
        assert_eq!(handle.generation(), 1);
        let lease = handle.lease();
        assert_eq!(*lease.router(), 41);
        assert_eq!(lease.generation(), 1);
        drop(lease); // publish would otherwise drain forever
        assert_eq!(handle.publish(Arc::new(42)), 2);
        assert_eq!(*handle.current(), 42);
        assert_eq!(handle.generation(), 2);
    }

    #[test]
    fn publish_waits_for_old_leases_and_new_leases_do_not_block_it() {
        let handle = Arc::new(RouterHandle::new(Arc::new(1)));
        let lease = handle.lease();
        let publisher = {
            let handle = Arc::clone(&handle);
            std::thread::spawn(move || handle.publish(Arc::new(2)))
        };
        // The swap itself is immediate: new leases see the new router even
        // while the publisher is still draining the old generation.
        loop {
            let fresh = handle.lease();
            if fresh.generation() == 2 {
                assert_eq!(*fresh.router(), 2);
                break;
            }
            std::thread::yield_now();
        }
        // The drain cannot complete while the old-generation lease lives.
        assert!(!publisher.is_finished(), "publish returned with an old lease outstanding");
        drop(lease);
        assert_eq!(publisher.join().unwrap(), 2);
    }
}
