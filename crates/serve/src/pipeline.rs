//! The end-to-end question→SQL pipeline contract: options, typed errors,
//! introspectable reports, and the [`QueryPipeline`] trait the serving
//! layer fronts.
//!
//! The paper's LLM–copilot collaboration (Figure 1) is *fallible at every
//! stage*: routing can miss, a routed schema can resolve to nothing, the
//! LLM can fail to ground the question, and generated SQL can error at
//! execution. This module makes each stage's failure a typed value instead
//! of a silent `None`:
//!
//! ```text
//! question ──► route ──► resolve prompt ──► generate SQL ──► execute
//!              │          │                  │                │
//!              ▼          ▼                  ▼                ▼
//!        AskError::  AskError::        AskError::       AskError::
//!        Routing     Prompt            Generation       Execution
//! ```
//!
//! A pipeline walks the router's top-k candidate schemata and, on an
//! execution error, re-prompts the generator with the failed SQL and the
//! engine error (execution-feedback repair). [`AskOptions`] dials the
//! candidate count and the repair budget; [`AskReport`] records every
//! candidate, every SQL attempt with its outcome, and per-stage timings.

use std::time::Duration;

use dbcopilot_graph::QuerySchema;
use dbcopilot_sqlengine::{EngineError, ResultSet};

/// How much of the pipeline's work an [`AskReport`] retains.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TraceLevel {
    /// Counters and the answer only: no per-attempt rows in the report.
    Off,
    /// Every attempt with its SQL and outcome (the default).
    #[default]
    Stages,
    /// Like [`TraceLevel::Stages`], plus the full rendered prompt text of
    /// every attempt.
    Full,
}

/// Options for [`QueryPipeline::ask_with`], builder-style:
///
/// ```
/// use dbcopilot_serve::{AskOptions, TraceLevel};
///
/// let opts = AskOptions::new().top_k(5).repair_attempts(2).trace(TraceLevel::Full);
/// assert_eq!(opts.top_k, 5);
/// let legacy = AskOptions::first_candidate(); // the old single-candidate path
/// assert_eq!((legacy.top_k, legacy.repair_attempts), (1, 0));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub struct AskOptions {
    /// How many candidate schemata (best first, one per database) the
    /// fallback loop walks. Minimum 1.
    pub top_k: usize,
    /// How many execution-feedback re-prompts are allowed per candidate
    /// after a SQL execution error. `0` disables repair.
    pub repair_attempts: usize,
    /// Report verbosity.
    pub trace: TraceLevel,
}

impl Default for AskOptions {
    fn default() -> Self {
        AskOptions { top_k: 3, repair_attempts: 1, trace: TraceLevel::Stages }
    }
}

impl AskOptions {
    pub fn new() -> Self {
        Self::default()
    }

    /// The pre-redesign behavior: best candidate only, no repair.
    pub fn first_candidate() -> Self {
        Self::new().top_k(1).repair_attempts(0)
    }

    pub fn top_k(mut self, k: usize) -> Self {
        self.top_k = k.max(1);
        self
    }

    pub fn repair_attempts(mut self, n: usize) -> Self {
        self.repair_attempts = n;
        self
    }

    pub fn trace(mut self, level: TraceLevel) -> Self {
        self.trace = level;
        self
    }
}

/// One candidate schema as scored by the router.
#[derive(Debug, Clone, PartialEq)]
pub struct ScoredCandidate {
    pub schema: QuerySchema,
    /// Sequence log-probability from beam search.
    pub logp: f32,
}

/// What happened to one generated-SQL attempt.
#[derive(Debug, Clone, PartialEq)]
pub enum AttemptOutcome {
    /// The SQL executed; the answer was built from this attempt.
    Success { rows: usize },
    /// The generator could not ground the question on this candidate
    /// schema (no SQL emitted). Repair cannot help here — the loop moves
    /// to the next candidate.
    NoSql,
    /// The SQL failed to execute; the error feeds the next repair prompt.
    ExecutionError(EngineError),
}

/// One row of the pipeline trace: a single prompt→SQL→execution attempt.
#[derive(Debug, Clone, PartialEq)]
pub struct SqlAttempt {
    /// Index into [`AskReport::candidates`].
    pub candidate: usize,
    /// Which database this attempt ran against.
    pub database: String,
    /// `0` for the initial attempt on a candidate, `n` for the n-th
    /// execution-feedback repair.
    pub repair: usize,
    /// Full rendered prompt text ([`TraceLevel::Full`] only).
    pub prompt: Option<String>,
    /// The generated SQL (`None` when grounding failed).
    pub sql: Option<String>,
    pub outcome: AttemptOutcome,
}

/// Wall-clock spent in each pipeline stage.
#[derive(Debug, Clone, Copy, Default)]
pub struct StageTimings {
    /// Schema routing (beam search + candidate merging).
    pub route: Duration,
    /// Prompt construction + SQL generation, summed over attempts.
    pub generate: Duration,
    /// SQL execution, summed over attempts.
    pub execute: Duration,
    /// End-to-end, including stage glue.
    pub total: Duration,
}

/// The answer to a natural-language question: the chosen schema, the SQL
/// that executed, and its result.
#[derive(Debug, Clone, PartialEq)]
pub struct Answer {
    /// The candidate schema the successful SQL ran against.
    pub schema: QuerySchema,
    pub sql: String,
    pub result: ResultSet,
    /// Execution errors hit — and recovered from — on the way to this
    /// answer (earlier candidates and failed repair rounds). Never
    /// silently dropped.
    pub recovered_errors: Vec<EngineError>,
}

/// A full pipeline trace: the answer plus everything that led to it.
#[derive(Debug, Clone)]
pub struct AskReport {
    pub question: String,
    pub answer: Answer,
    /// Scored candidates the router proposed (best first, truncated to
    /// [`AskOptions::top_k`]).
    pub candidates: Vec<ScoredCandidate>,
    /// Index of the winning candidate in `candidates`.
    pub chosen: usize,
    /// Every prompt/SQL attempt in order (empty at [`TraceLevel::Off`]).
    pub attempts: Vec<SqlAttempt>,
    pub timings: StageTimings,
}

impl AskReport {
    /// Whether the answer needed the fallback machinery at all — a later
    /// candidate or a repair re-prompt (as opposed to first-shot success).
    pub fn recovered(&self) -> bool {
        self.chosen > 0 || !self.answer.recovered_errors.is_empty()
    }
}

// ---------------------------------------------------------------------
// error taxonomy
// ---------------------------------------------------------------------

/// The router produced no candidate schemata.
#[derive(Debug, Clone, PartialEq)]
pub struct RoutingError {
    pub question: String,
}

impl std::fmt::Display for RoutingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "routing produced no candidate schema for {:?}", self.question)
    }
}

impl std::error::Error for RoutingError {}

/// No routed candidate resolved to any known database/tables in the
/// collection (stale router, renamed schema, …).
#[derive(Debug, Clone, PartialEq)]
pub struct PromptError {
    /// How many candidates were tried.
    pub candidates: usize,
}

impl std::fmt::Display for PromptError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "none of the {} routed candidates resolved to a known schema", self.candidates)
    }
}

impl std::error::Error for PromptError {}

/// The generator could not ground the question on any candidate schema —
/// no SQL was ever produced.
#[derive(Debug, Clone, PartialEq)]
pub struct GenerationError {
    /// How many candidates were prompted.
    pub candidates: usize,
}

impl std::fmt::Display for GenerationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SQL generation failed on all {} candidate schemata", self.candidates)
    }
}

impl std::error::Error for GenerationError {}

/// Every generated SQL failed to execute, across all candidates and
/// repair attempts. Carries the full attempt trace; the last engine error
/// is the [`std::error::Error::source`].
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutionError {
    /// The failed attempts, in order (always recorded on failure,
    /// regardless of [`TraceLevel`]).
    pub attempts: Vec<SqlAttempt>,
    /// The last execution error observed.
    pub last: EngineError,
}

impl std::fmt::Display for ExecutionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "all {} SQL attempts failed to execute; last error: {}",
            self.attempts.len(),
            self.last
        )
    }
}

impl std::error::Error for ExecutionError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.last)
    }
}

/// Why a question could not be answered, by pipeline stage.
///
/// Every variant (and every wrapped stage error, including the engine's
/// [`EngineError`]) implements [`std::error::Error`], so the whole
/// taxonomy composes with `?`, `anyhow`-style dynamic errors, and plain
/// `{}` formatting.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum AskError {
    /// Stage 1: the router emitted no candidates.
    Routing(RoutingError),
    /// Stage 2: no candidate resolved against the collection.
    Prompt(PromptError),
    /// Stage 3: the generator produced no SQL on any candidate.
    Generation(GenerationError),
    /// Stage 4: SQL was produced but every attempt failed to execute.
    Execution(ExecutionError),
}

impl AskError {
    /// Short stable stage name (metrics keys, log fields).
    pub fn stage(&self) -> &'static str {
        match self {
            AskError::Routing(_) => "routing",
            AskError::Prompt(_) => "prompt",
            AskError::Generation(_) => "generation",
            AskError::Execution(_) => "execution",
        }
    }
}

impl std::fmt::Display for AskError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AskError::Routing(e) => write!(f, "routing failed: {e}"),
            AskError::Prompt(e) => write!(f, "prompt resolution failed: {e}"),
            AskError::Generation(e) => write!(f, "SQL generation failed: {e}"),
            AskError::Execution(e) => write!(f, "SQL execution failed: {e}"),
        }
    }
}

impl std::error::Error for AskError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AskError::Routing(e) => Some(e),
            AskError::Prompt(e) => Some(e),
            AskError::Generation(e) => Some(e),
            AskError::Execution(e) => Some(e),
        }
    }
}

/// The result of one end-to-end ask (what [`crate::AskService`] caches).
pub type AskOutcome = Result<AskReport, AskError>;

// ---------------------------------------------------------------------
// the pipeline trait
// ---------------------------------------------------------------------

/// An end-to-end question→SQL→result pipeline.
///
/// Implemented by the facade's `DbCopilot`; anything implementing it can
/// be put behind an [`crate::AskService`] (cache + micro-batching + pool
/// dispatch) or evaluated by `dbcopilot-eval`'s end-to-end harness.
pub trait QueryPipeline: Send + Sync {
    /// Answer a question with full control and a full trace.
    fn ask_with(&self, question: &str, opts: &AskOptions) -> Result<AskReport, AskError>;

    /// Answer a question with default options, keeping only the answer.
    fn ask(&self, question: &str) -> Result<Answer, AskError> {
        self.ask_with(question, &AskOptions::default()).map(|r| r.answer)
    }
}

impl<P: QueryPipeline + ?Sized> QueryPipeline for &P {
    fn ask_with(&self, question: &str, opts: &AskOptions) -> Result<AskReport, AskError> {
        (**self).ask_with(question, opts)
    }
}

impl<P: QueryPipeline + ?Sized> QueryPipeline for Box<P> {
    fn ask_with(&self, question: &str, opts: &AskOptions) -> Result<AskReport, AskError> {
        (**self).ask_with(question, opts)
    }
}

impl<P: QueryPipeline + ?Sized> QueryPipeline for std::sync::Arc<P> {
    fn ask_with(&self, question: &str, opts: &AskOptions) -> Result<AskReport, AskError> {
        (**self).ask_with(question, opts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exec_error() -> ExecutionError {
        ExecutionError {
            attempts: vec![SqlAttempt {
                candidate: 0,
                database: "world".into(),
                repair: 0,
                prompt: None,
                sql: Some("SELECT".into()),
                outcome: AttemptOutcome::ExecutionError(EngineError::Parse {
                    message: "unexpected end".into(),
                }),
            }],
            last: EngineError::Parse { message: "unexpected end".into() },
        }
    }

    #[test]
    fn options_builder_clamps_top_k() {
        let o = AskOptions::new().top_k(0);
        assert_eq!(o.top_k, 1);
    }

    #[test]
    fn error_taxonomy_is_std_error_with_sources() {
        let errors: Vec<AskError> = vec![
            AskError::Routing(RoutingError { question: "q".into() }),
            AskError::Prompt(PromptError { candidates: 3 }),
            AskError::Generation(GenerationError { candidates: 3 }),
            AskError::Execution(exec_error()),
        ];
        for e in &errors {
            let dynerr: &dyn std::error::Error = e;
            assert!(!dynerr.to_string().is_empty());
            assert!(dynerr.source().is_some(), "every stage wraps a typed cause: {e}");
        }
        // the execution variant chains down to the engine error
        let exec = &errors[3];
        let source = std::error::Error::source(exec).unwrap();
        let engine = source.source().expect("ExecutionError sources the EngineError");
        assert!(engine.to_string().contains("parse error"));
    }

    #[test]
    fn stage_names_are_stable() {
        assert_eq!(AskError::Prompt(PromptError { candidates: 1 }).stage(), "prompt");
        assert_eq!(AskError::Execution(exec_error()).stage(), "execution");
    }

    #[test]
    fn report_recovered_detects_fallback() {
        let answer = Answer {
            schema: QuerySchema::new("world", vec!["city".into()]),
            sql: "SELECT COUNT(*) FROM city".into(),
            result: ResultSet::empty(),
            recovered_errors: Vec::new(),
        };
        let mut report = AskReport {
            question: "q".into(),
            answer,
            candidates: vec![ScoredCandidate {
                schema: QuerySchema::new("world", vec!["city".into()]),
                logp: -0.5,
            }],
            chosen: 0,
            attempts: Vec::new(),
            timings: StageTimings::default(),
        };
        assert!(!report.recovered());
        report.chosen = 1;
        assert!(report.recovered());
    }
}
