//! [`AskService`] — end-to-end serving: the cache fronts *answers*, not
//! just routes.
//!
//! `RouterService` accelerates stage 1 of the pipeline; `AskService` puts
//! the whole question→SQL→result path behind the same machinery (LRU
//! cache on normalized question text, dispatcher micro-batching with
//! in-flight dedup, persistent-pool fan-out). Because a pipeline ask is a
//! pure function of the question — the fallback loop, repair prompts and
//! the mock LLM are all seeded — cached and deduplicated answers are
//! bit-identical to direct [`QueryPipeline::ask_with`] calls, errors
//! included: a question that fails deterministically is served its typed
//! [`AskError`](crate::AskError) from the cache instead of re-running the
//! failing pipeline.

use std::sync::Arc;

use crate::pipeline::{AskOptions, AskOutcome, QueryPipeline};
use crate::service::{Backend, Engine, ServiceConfig, ServiceStats};

pub(crate) struct AskBackend<P> {
    pipeline: Arc<P>,
    opts: AskOptions,
}

impl<P: QueryPipeline + 'static> Backend for AskBackend<P> {
    type Out = AskOutcome;

    fn compute(&self, question: &str) -> AskOutcome {
        self.pipeline.ask_with(question, &self.opts)
    }

    fn thread_label() -> &'static str {
        "dbc-ask-dispatch"
    }
}

/// A concurrent serving front over a shared end-to-end pipeline.
///
/// Every ask is served with the same [`AskOptions`] (fixed at
/// construction — cache entries must all mean the same computation).
/// Dropping the service is a graceful shutdown: queued requests are
/// answered, then the dispatcher (and any dedicated pool) joins.
pub struct AskService<P: QueryPipeline + 'static> {
    engine: Engine<AskBackend<P>>,
}

impl<P: QueryPipeline + 'static> AskService<P> {
    /// Serve an already-shared pipeline.
    pub fn new(pipeline: Arc<P>, opts: AskOptions, cfg: ServiceConfig) -> Self {
        let backend = AskBackend { pipeline, opts };
        AskService { engine: Engine::new(backend, cfg) }
    }

    /// Take ownership of a pipeline and serve it.
    pub fn from_pipeline(pipeline: P, opts: AskOptions, cfg: ServiceConfig) -> Self {
        Self::new(Arc::new(pipeline), opts, cfg)
    }

    /// The served pipeline.
    pub fn pipeline(&self) -> &Arc<P> {
        &self.engine.backend().pipeline
    }

    /// The options every served ask runs with.
    pub fn options(&self) -> &AskOptions {
        &self.engine.backend().opts
    }

    /// Answer one question end to end: cache fast path, micro-batched
    /// with concurrent misses, computed on the pool, cached (success or
    /// typed failure alike). Blocks until the outcome is available.
    pub fn ask(&self, question: &str) -> Arc<AskOutcome> {
        self.engine.submit(question)
    }

    /// Answer a slice of questions synchronously (no dispatcher, no flush
    /// timer), deduplicated and computed on the pool per `max_batch`
    /// window. Outcomes come back in question order; the whole call is
    /// deterministic — ideal for evaluation loops.
    pub fn ask_many(&self, questions: &[String]) -> Vec<Arc<AskOutcome>> {
        self.engine.submit_many(questions)
    }

    /// Pre-seed the cache by asking `questions` before traffic arrives.
    pub fn warm(&self, questions: &[String]) {
        let _ = self.ask_many(questions);
    }

    /// Current serving counters.
    pub fn stats(&self) -> ServiceStats {
        self.engine.stats()
    }
}
