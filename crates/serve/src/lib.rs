//! `dbcopilot-serve` — the concurrent serving layer over schema routing
//! *and* the full question→SQL pipeline.
//!
//! DBCopilot is only useful at scale if it can be *served*: many clients
//! asking questions over one loaded model, concurrently, with
//! sub-model-call latency for repeated questions. This crate provides
//! that front, plus the end-to-end pipeline contract it serves:
//!
//! * [`QueryPipeline`] — the question→SQL→result trait (implemented by
//!   the facade's `DbCopilot`), with [`AskOptions`] (top-k candidate
//!   fallback, execution-feedback repair budget, trace verbosity), the
//!   staged [`AskError`] taxonomy (every variant a typed
//!   [`std::error::Error`]) and the introspectable [`AskReport`] trace;
//! * [`RouterService`] — wraps any [`SchemaRouter`] (the trained
//!   `DbcRouter`, or any baseline) behind an `Arc`, micro-batches
//!   concurrent requests, deduplicates identical in-flight questions, and
//!   executes batches on the persistent worker pool from
//!   `dbcopilot-runtime`;
//! * [`AskService`] — the same machinery fronting a full
//!   [`QueryPipeline`], so the LRU cache holds complete answers (and
//!   typed failures), not just routes;
//! * [`LruCache`] — the deterministic, capacity-bounded cache keyed on
//!   [`normalize_question`], with hit/miss counters;
//! * [`ServiceConfig`] / [`ServiceStats`] — tuning knobs (builder-style)
//!   and observable serving counters.
//!
//! ```
//! use std::sync::Arc;
//! use dbcopilot_retrieval::{Bm25Index, Bm25Params, Target, TargetSet};
//! use dbcopilot_serve::{RouterService, ServiceConfig};
//!
//! // Any SchemaRouter can be served; a tiny BM25 index stands in here.
//! let targets = TargetSet {
//!     targets: vec![Target {
//!         database: "concert_singer".into(),
//!         table: "singer".into(),
//!         text: "singer name song".into(),
//!     }],
//! };
//! let index = Bm25Index::build(targets, Bm25Params::default());
//! let service = RouterService::new(Arc::new(index), ServiceConfig::default());
//!
//! let first = service.route("How many singers are there?");
//! let again = service.route("how many singers are there"); // cache hit
//! assert_eq!(first.database_names(), again.database_names());
//! assert_eq!(service.stats().cache_hits, 1);
//! ```
//!
//! [`SchemaRouter`]: dbcopilot_retrieval::SchemaRouter

pub mod ask;
pub mod cache;
pub mod handle;
pub mod pipeline;
pub mod service;

pub use ask::AskService;
pub use cache::{normalize_question, LruCache};
pub use handle::{RouterHandle, RouterLease};
pub use pipeline::{
    Answer, AskError, AskOptions, AskOutcome, AskReport, AttemptOutcome, ExecutionError,
    GenerationError, PromptError, QueryPipeline, RoutingError, ScoredCandidate, SqlAttempt,
    StageTimings, TraceLevel,
};
pub use service::{RouterService, ServiceConfig, ServiceStats};
