//! `RouterService`: a concurrent serving front for any schema router.
//!
//! Three mechanisms stack, each configurable through [`ServiceConfig`]:
//!
//! 1. **LRU route cache** ([`crate::LruCache`]) keyed on
//!    [`crate::normalize_question`] — repeated and surface-variant
//!    questions are answered without touching the model;
//! 2. **micro-batching** — a dispatcher thread collects concurrent cache
//!    misses into batches (flushing at `max_batch` requests or after
//!    `flush_timeout`), and deduplicates identical in-flight questions so
//!    one route serves every waiter;
//! 3. **worker-pool dispatch** — each batch fans out over the persistent
//!    [`WorkerPool`] from `dbcopilot-runtime` (no per-request thread
//!    spawns).
//!
//! Routing itself stays deterministic: the underlying router is shared
//! read-only behind an [`Arc`], every question routes to the same result
//! no matter how requests interleave, and the synchronous
//! [`RouterService::route_many`] path is bit-for-bit reproducible at any
//! `DBC_THREADS`.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use dbcopilot_retrieval::{RoutingResult, SchemaRouter};
use dbcopilot_runtime::{global_pool, WorkerPool};

use crate::cache::{normalize_question, LruCache};

/// Tuning knobs for a [`RouterService`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Flush a batch as soon as it holds this many requests.
    pub max_batch: usize,
    /// Flush a partial batch after waiting this long for more requests.
    pub flush_timeout: Duration,
    /// Route-cache entries (`0` disables caching).
    pub cache_capacity: usize,
    /// `top_tables` passed to the underlying router on every route.
    pub top_tables: usize,
    /// Dedicated pool workers; `0` uses the process-wide shared pool.
    pub workers: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            max_batch: 16,
            flush_timeout: Duration::from_millis(1),
            cache_capacity: 4096,
            top_tables: 100,
            workers: 0,
        }
    }
}

/// A snapshot of serving counters (see [`RouterService::stats`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Cache lookups answered without routing.
    pub cache_hits: u64,
    /// Cache lookups that fell through to the router.
    pub cache_misses: u64,
    /// Entries currently cached.
    pub cached: usize,
    /// Micro-batches executed by the dispatcher.
    pub batches: u64,
    /// Questions actually routed (after caching and deduplication).
    pub routed: u64,
    /// Largest micro-batch observed (distinct questions).
    pub max_batch_observed: u64,
}

/// One queued cache miss: the normalized key, the original question text,
/// and where to send the result.
struct Request {
    key: String,
    question: String,
    reply: Sender<Arc<RoutingResult>>,
}

struct Shared<R> {
    router: Arc<R>,
    cfg: ServiceConfig,
    cache: Mutex<LruCache<Arc<RoutingResult>>>,
    /// `None` → use the process-wide `global_pool()`.
    pool: Option<WorkerPool>,
    batches: AtomicU64,
    routed: AtomicU64,
    max_batch_observed: AtomicU64,
}

impl<R: SchemaRouter + Send + Sync> Shared<R> {
    fn pool(&self) -> &WorkerPool {
        self.pool.as_ref().unwrap_or_else(|| global_pool())
    }

    /// Route a batch of distinct `(key, question)` pairs on the pool and
    /// publish the results to the cache. Returns results in input order.
    fn route_unique(&self, unique: &[(String, String)]) -> Vec<Arc<RoutingResult>> {
        if unique.is_empty() {
            // all cache hits — no batch to run, no counters to bump
            return Vec::new();
        }
        let results: Vec<Arc<RoutingResult>> = self
            .pool()
            .map(unique, |_, (_, q)| Arc::new(self.router.route(q, self.cfg.top_tables)));
        let mut cache = lock(&self.cache);
        for ((key, _), result) in unique.iter().zip(&results) {
            cache.insert(key.clone(), Arc::clone(result));
        }
        drop(cache);
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.routed.fetch_add(unique.len() as u64, Ordering::Relaxed);
        self.max_batch_observed.fetch_max(unique.len() as u64, Ordering::Relaxed);
        results
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// A concurrent serving front over a shared read-only router.
///
/// Clients call [`route`](RouterService::route) from any number of
/// threads; cache misses are micro-batched by a dispatcher thread and
/// executed on a persistent worker pool. Dropping the service is a
/// graceful shutdown: queued requests are still answered, then the
/// dispatcher (and any dedicated pool) joins.
pub struct RouterService<R: SchemaRouter + Send + Sync + 'static> {
    shared: Arc<Shared<R>>,
    sender: Option<Sender<Request>>,
    dispatcher: Option<JoinHandle<()>>,
}

impl<R: SchemaRouter + Send + Sync + 'static> RouterService<R> {
    /// Serve an already-shared router.
    pub fn new(router: Arc<R>, cfg: ServiceConfig) -> Self {
        let cfg = ServiceConfig { max_batch: cfg.max_batch.max(1), ..cfg };
        let shared = Arc::new(Shared {
            router,
            cache: Mutex::new(LruCache::new(cfg.cache_capacity)),
            pool: (cfg.workers > 0).then(|| WorkerPool::new(cfg.workers)),
            cfg,
            batches: AtomicU64::new(0),
            routed: AtomicU64::new(0),
            max_batch_observed: AtomicU64::new(0),
        });
        let (sender, receiver) = channel::<Request>();
        let dispatcher = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("dbc-serve-dispatch".to_string())
                .spawn(move || dispatch_loop(&shared, &receiver))
                .expect("failed to spawn service dispatcher")
        };
        RouterService { shared, sender: Some(sender), dispatcher: Some(dispatcher) }
    }

    /// Take ownership of a router and serve it.
    pub fn from_router(router: R, cfg: ServiceConfig) -> Self {
        Self::new(Arc::new(router), cfg)
    }

    /// The served router.
    pub fn router(&self) -> &Arc<R> {
        &self.shared.router
    }

    /// Route one question: answered from the cache when possible,
    /// otherwise enqueued, micro-batched with concurrent misses, routed on
    /// the pool, and cached. Blocks until the result is available.
    pub fn route(&self, question: &str) -> Arc<RoutingResult> {
        let key = normalize_question(question);
        if let Some(hit) = lock(&self.shared.cache).get(&key) {
            return Arc::clone(hit);
        }
        let (reply, result) = channel();
        self.sender
            .as_ref()
            .expect("sender alive until drop")
            .send(Request { key, question: question.to_string(), reply })
            .expect("dispatcher alive until drop");
        // A dropped reply sender means the router panicked on this batch
        // (the dispatcher contained it and kept serving); surface the
        // failure to the affected caller only.
        result.recv().unwrap_or_else(|_| {
            panic!("router panicked while routing the batch containing {question:?}")
        })
    }

    /// Route a slice of questions synchronously (no dispatcher, no flush
    /// timer): each `max_batch`-sized window is cache-checked, deduplicated
    /// and routed on the pool. Results come back in question order, and the
    /// whole call is deterministic — ideal for evaluation loops.
    pub fn route_many(&self, questions: &[String]) -> Vec<Arc<RoutingResult>> {
        let mut out: Vec<Arc<RoutingResult>> = Vec::with_capacity(questions.len());
        for window in questions.chunks(self.shared.cfg.max_batch.max(1)) {
            // out[i] for this window: either a cache hit or an index into
            // the routed `unique` batch.
            let mut plan: Vec<Result<Arc<RoutingResult>, usize>> = Vec::with_capacity(window.len());
            let mut unique: Vec<(String, String)> = Vec::new();
            let mut seen: HashMap<String, usize> = HashMap::new();
            {
                let mut cache = lock(&self.shared.cache);
                for q in window {
                    let key = normalize_question(q);
                    if let Some(hit) = cache.get(&key) {
                        plan.push(Ok(Arc::clone(hit)));
                    } else if let Some(&at) = seen.get(&key) {
                        plan.push(Err(at));
                    } else {
                        seen.insert(key.clone(), unique.len());
                        plan.push(Err(unique.len()));
                        unique.push((key, q.clone()));
                    }
                }
            }
            let routed = self.shared.route_unique(&unique);
            for step in plan {
                out.push(match step {
                    Ok(hit) => hit,
                    Err(at) => Arc::clone(&routed[at]),
                });
            }
        }
        out
    }

    /// Pre-seed the cache by routing `questions` (e.g. a known-popular
    /// workload) before traffic arrives.
    pub fn warm(&self, questions: &[String]) {
        let _ = self.route_many(questions);
    }

    /// Current serving counters.
    pub fn stats(&self) -> ServiceStats {
        let cache = lock(&self.shared.cache);
        ServiceStats {
            cache_hits: cache.hits(),
            cache_misses: cache.misses(),
            cached: cache.len(),
            batches: self.shared.batches.load(Ordering::Relaxed),
            routed: self.shared.routed.load(Ordering::Relaxed),
            max_batch_observed: self.shared.max_batch_observed.load(Ordering::Relaxed),
        }
    }
}

impl<R: SchemaRouter + Send + Sync + 'static> Drop for RouterService<R> {
    fn drop(&mut self) {
        // Closing the channel lets the dispatcher answer everything still
        // queued, then exit; joining (dispatcher first, then any dedicated
        // pool via Shared's own drop) completes the graceful shutdown.
        drop(self.sender.take());
        if let Some(handle) = self.dispatcher.take() {
            let _ = handle.join();
        }
    }
}

/// Dispatcher: collect requests into micro-batches, route each batch once
/// per distinct question, fan results back out to every waiter.
fn dispatch_loop<R: SchemaRouter + Send + Sync>(shared: &Shared<R>, receiver: &Receiver<Request>) {
    while let Ok(first) = receiver.recv() {
        let mut batch = vec![first];
        let deadline = Instant::now() + shared.cfg.flush_timeout;
        while batch.len() < shared.cfg.max_batch {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            match receiver.recv_timeout(deadline - now) {
                Ok(req) => batch.push(req),
                Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => break,
            }
        }
        // Contain a panicking route: dropping the batch drops its reply
        // senders, so only the affected waiters fail (their `route` call
        // re-raises) while the dispatcher survives to serve the next batch.
        let contained = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_batch(shared, batch);
        }));
        if contained.is_err() {
            eprintln!("dbcopilot-serve: router panicked on a batch; service continues");
        }
    }
    // Channel closed: `recv` already drained every queued request, so
    // nothing is left unanswered.
}

fn run_batch<R: SchemaRouter + Send + Sync>(shared: &Shared<R>, batch: Vec<Request>) {
    // Deduplicate by normalized key, preserving first-seen order.
    let mut unique: Vec<(String, String)> = Vec::new();
    let mut waiters: Vec<Vec<Sender<Arc<RoutingResult>>>> = Vec::new();
    let mut seen: HashMap<String, usize> = HashMap::new();
    for req in batch {
        match seen.get(&req.key) {
            Some(&at) => waiters[at].push(req.reply),
            None => {
                seen.insert(req.key.clone(), unique.len());
                unique.push((req.key, req.question));
                waiters.push(vec![req.reply]);
            }
        }
    }
    let results = shared.route_unique(&unique);
    for (result, senders) in results.into_iter().zip(waiters) {
        for sender in senders {
            // A send error just means the client went away; nothing to do.
            let _ = sender.send(Arc::clone(&result));
        }
    }
}
