//! The shared serving engine and [`RouterService`], its routing front.
//!
//! Three mechanisms stack, each configurable through [`ServiceConfig`]:
//!
//! 1. **LRU cache** ([`crate::LruCache`]) keyed on
//!    [`crate::normalize_question`] — repeated and surface-variant
//!    questions are answered without touching the model;
//! 2. **micro-batching** — a dispatcher thread collects concurrent cache
//!    misses into batches (flushing at `max_batch` requests or after
//!    `flush_timeout`), and deduplicates identical in-flight questions so
//!    one computation serves every waiter;
//! 3. **worker-pool dispatch** — each batch fans out over the persistent
//!    [`WorkerPool`] from `dbcopilot-runtime` (no per-request thread
//!    spawns).
//!
//! The machinery is generic over a crate-internal `Backend` (question in, value out):
//! [`RouterService`] instantiates it with a schema router
//! (question → [`RoutingResult`]), and [`crate::AskService`] with a full
//! [`crate::QueryPipeline`] (question → answer report), so the cache
//! fronts *answers*, not just routes. Backends are pure functions of the
//! question, which is what keeps served results identical to direct calls
//! no matter how requests interleave.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use dbcopilot_retrieval::{
    PrecisionSwitch, RoutePrecision, RoutingResult, SchemaRouter, ShardCounters,
};
use dbcopilot_runtime::{global_pool, lock_rank, OrderedMutex, WorkerPool};

use crate::cache::{normalize_question, LruCache};
use crate::handle::RouterHandle;

/// Tuning knobs for a serving front ([`RouterService`] /
/// [`crate::AskService`]). Builder-style so adding a knob is not a
/// breaking change:
///
/// ```
/// use dbcopilot_serve::ServiceConfig;
/// let cfg = ServiceConfig::new().max_batch(32).cache_capacity(1024);
/// assert_eq!(cfg.max_batch, 32);
/// ```
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct ServiceConfig {
    /// Flush a batch as soon as it holds this many requests.
    pub max_batch: usize,
    /// Flush a partial batch after waiting this long for more requests.
    pub flush_timeout: Duration,
    /// Cache entries (`0` disables caching).
    pub cache_capacity: usize,
    /// `top_tables` passed to the underlying router on every route
    /// (routing fronts only).
    pub top_tables: usize,
    /// Dedicated pool workers; `0` uses the process-wide shared pool.
    pub workers: usize,
    /// Scoring precision applied to the router by
    /// [`RouterService::from_router_at`] before it is shared (routing
    /// fronts only; cache entries are computed at this precision too).
    pub precision: RoutePrecision,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            max_batch: 16,
            flush_timeout: Duration::from_millis(1),
            cache_capacity: 4096,
            top_tables: 100,
            workers: 0,
            precision: RoutePrecision::F32,
        }
    }
}

impl ServiceConfig {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn max_batch(mut self, n: usize) -> Self {
        self.max_batch = n;
        self
    }

    pub fn flush_timeout(mut self, d: Duration) -> Self {
        self.flush_timeout = d;
        self
    }

    pub fn cache_capacity(mut self, n: usize) -> Self {
        self.cache_capacity = n;
        self
    }

    pub fn top_tables(mut self, n: usize) -> Self {
        self.top_tables = n;
        self
    }

    pub fn workers(mut self, n: usize) -> Self {
        self.workers = n;
        self
    }

    pub fn precision(mut self, p: RoutePrecision) -> Self {
        self.precision = p;
        self
    }
}

/// A snapshot of serving counters (see [`RouterService::stats`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Cache lookups answered without computing.
    pub cache_hits: u64,
    /// Cache lookups that fell through to the backend.
    pub cache_misses: u64,
    /// Entries currently cached.
    pub cached: usize,
    /// Micro-batches executed by the dispatcher.
    pub batches: u64,
    /// Questions actually computed (after caching and deduplication).
    pub computed: u64,
    /// Largest micro-batch observed (distinct questions).
    pub max_batch_observed: u64,
    /// Requests accepted by the dispatcher queue and not yet answered
    /// (admission-control signal; `route_many`'s synchronous path bypasses
    /// the queue and never shows up here).
    pub queue_depth: u64,
    /// Router generation currently published (starts at 1, +1 per
    /// [`RouterService::publish`]; 0 for fronts without a swappable router,
    /// e.g. [`crate::AskService`]).
    pub generation: u64,
    /// Per-shard counters of the served router; empty for monolithic
    /// routers (see [`dbcopilot_retrieval::SchemaRouter::shard_counters`]).
    pub shards: Vec<ShardCounters>,
}

/// What the serving engine fronts: a pure, thread-safe map from question
/// text to a value. Crate-internal — services expose typed wrappers.
pub(crate) trait Backend: Send + Sync + 'static {
    type Out: Send + Sync + 'static;

    /// Compute the value for one question. Must be a pure function of the
    /// question (no interior mutation visible to callers), which is what
    /// makes caching and deduplication invisible to quality.
    fn compute(&self, question: &str) -> Self::Out;

    /// Dispatcher thread name.
    fn thread_label() -> &'static str;

    /// The backend's current generation. Cache entries are tagged with the
    /// generation that computed them and only served while it is current,
    /// so a hot-swapped backend can never serve a stale result. Backends
    /// without swappable state stay at the default 0 forever.
    fn generation(&self) -> u64 {
        0
    }

    /// Per-shard counters of the underlying router, if sharded.
    fn shard_counters(&self) -> Vec<ShardCounters> {
        Vec::new()
    }
}

/// One queued cache miss: the normalized key, the original question text,
/// and where to send the result.
struct Request<T> {
    key: String,
    question: String,
    reply: Sender<Arc<T>>,
}

struct Shared<B: Backend> {
    backend: B,
    cfg: ServiceConfig,
    /// Values are tagged with the backend generation that computed them; a
    /// tag that is no longer current is treated as a miss.
    cache: OrderedMutex<LruCache<(u64, Arc<B::Out>)>>,
    /// `None` → use the process-wide `global_pool()`.
    pool: Option<WorkerPool>,
    batches: AtomicU64,
    computed: AtomicU64,
    max_batch_observed: AtomicU64,
    /// Requests accepted into the dispatcher queue and not yet answered.
    queue_depth: AtomicU64,
}

impl<B: Backend> Shared<B> {
    fn pool(&self) -> &WorkerPool {
        self.pool.as_ref().unwrap_or_else(|| global_pool())
    }

    /// Compute a batch of distinct `(key, question)` pairs on the pool and
    /// publish the results to the cache. Returns results in input order.
    fn compute_unique(&self, unique: &[(String, String)]) -> Vec<Arc<B::Out>> {
        if unique.is_empty() {
            // all cache hits — no batch to run, no counters to bump
            return Vec::new();
        }
        // Tag with the generation observed *before* computing: if a publish
        // lands mid-batch, these results carry the retired tag and are
        // never served from the cache again.
        let generation = self.backend.generation();
        let results: Vec<Arc<B::Out>> =
            self.pool().map(unique, |_, (_, q)| Arc::new(self.backend.compute(q)));
        let mut cache = self.cache.lock();
        for ((key, _), result) in unique.iter().zip(&results) {
            cache.insert(key.clone(), (generation, Arc::clone(result)));
        }
        drop(cache);
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.computed.fetch_add(unique.len() as u64, Ordering::Relaxed);
        self.max_batch_observed.fetch_max(unique.len() as u64, Ordering::Relaxed);
        results
    }
}

/// The generic serving core: cache fast path, dispatcher micro-batching,
/// pool fan-out, graceful drop. [`RouterService`] and
/// [`crate::AskService`] are thin typed fronts over one of these.
pub(crate) struct Engine<B: Backend> {
    shared: Arc<Shared<B>>,
    sender: Option<Sender<Request<B::Out>>>,
    dispatcher: Option<JoinHandle<()>>,
}

impl<B: Backend> Engine<B> {
    pub(crate) fn new(backend: B, cfg: ServiceConfig) -> Self {
        let cfg = {
            let mut cfg = cfg;
            cfg.max_batch = cfg.max_batch.max(1);
            cfg
        };
        let shared = Arc::new(Shared {
            backend,
            cache: OrderedMutex::new("cache", lock_rank::CACHE, LruCache::new(cfg.cache_capacity)),
            pool: (cfg.workers > 0).then(|| WorkerPool::new(cfg.workers)),
            cfg,
            batches: AtomicU64::new(0),
            computed: AtomicU64::new(0),
            max_batch_observed: AtomicU64::new(0),
            queue_depth: AtomicU64::new(0),
        });
        let (sender, receiver) = channel::<Request<B::Out>>();
        let dispatcher = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(B::thread_label().to_string())
                // dbc-lint: allow(no-raw-spawn): the dispatcher is a single
                // dedicated thread owning the micro-batch queue, joined by
                // Engine::drop — pool jobs must not block on each other.
                .spawn(move || dispatch_loop(&shared, &receiver))
                // dbc-lint: allow(panic-free-serving): runs once at engine
                // construction, never on the request path.
                .expect("failed to spawn service dispatcher")
        };
        Engine { shared, sender: Some(sender), dispatcher: Some(dispatcher) }
    }

    pub(crate) fn backend(&self) -> &B {
        &self.shared.backend
    }

    /// Serve one question: answered from the cache when possible,
    /// otherwise enqueued, micro-batched with concurrent misses, computed
    /// on the pool, and cached. Blocks until the result is available.
    pub(crate) fn submit(&self, question: &str) -> Arc<B::Out> {
        let key = normalize_question(question);
        let generation = self.shared.backend.generation();
        if let Some((tag, hit)) = self.shared.cache.lock().get(&key) {
            // An entry computed by a retired generation is a miss: fall
            // through and recompute on the current backend.
            if *tag == generation {
                return Arc::clone(hit);
            }
        }
        let (reply, result) = channel();
        self.shared.queue_depth.fetch_add(1, Ordering::Relaxed);
        let sent = self
            .sender
            .as_ref()
            .map(|s| s.send(Request { key, question: question.to_string(), reply }).is_ok())
            .unwrap_or(false);
        if !sent {
            // The engine is mid-drop (or the dispatcher is gone): serve the
            // request inline instead of panicking the caller. Slower, never
            // wrong — the backend itself is still alive via `shared`.
            self.shared.queue_depth.fetch_sub(1, Ordering::Relaxed);
            return Arc::new(self.shared.backend.compute(question));
        }
        // A dropped reply sender means the backend panicked on this batch
        // (the dispatcher contained it and kept serving); re-raise on the
        // affected caller only — the HTTP edge catches it and maps to 500.
        result.recv().unwrap_or_else(|_| {
            // dbc-lint: allow(panic-free-serving): deliberate re-raise of a
            // contained backend panic; the serving edge's catch_unwind owns it.
            panic!("serving backend panicked on the batch containing {question:?}")
        })
    }

    /// Serve a slice of questions synchronously (no dispatcher, no flush
    /// timer): each `max_batch`-sized window is cache-checked,
    /// deduplicated and computed on the pool. Results come back in
    /// question order, and the whole call is deterministic.
    pub(crate) fn submit_many(&self, questions: &[String]) -> Vec<Arc<B::Out>> {
        let mut out: Vec<Arc<B::Out>> = Vec::with_capacity(questions.len());
        for window in questions.chunks(self.shared.cfg.max_batch.max(1)) {
            // out[i] for this window: either a cache hit or an index into
            // the computed `unique` batch.
            let mut plan: Vec<Result<Arc<B::Out>, usize>> = Vec::with_capacity(window.len());
            let mut unique: Vec<(String, String)> = Vec::new();
            let mut seen: HashMap<String, usize> = HashMap::new();
            let generation = self.shared.backend.generation();
            {
                let mut cache = self.shared.cache.lock();
                for q in window {
                    let key = normalize_question(q);
                    if let Some((_, hit)) = cache.get(&key).filter(|(tag, _)| *tag == generation) {
                        plan.push(Ok(Arc::clone(hit)));
                    } else if let Some(&at) = seen.get(&key) {
                        plan.push(Err(at));
                    } else {
                        seen.insert(key.clone(), unique.len());
                        plan.push(Err(unique.len()));
                        unique.push((key, q.clone()));
                    }
                }
            }
            let computed = self.shared.compute_unique(&unique);
            for step in plan {
                out.push(match step {
                    Ok(hit) => hit,
                    // dbc-lint: allow(panic-free-serving): every Err(at) was
                    // pushed with at < unique.len(), and compute_unique
                    // returns exactly one result per unique entry.
                    Err(at) => Arc::clone(&computed[at]),
                });
            }
        }
        out
    }

    pub(crate) fn stats(&self) -> ServiceStats {
        let cache = self.shared.cache.lock();
        ServiceStats {
            cache_hits: cache.hits(),
            cache_misses: cache.misses(),
            cached: cache.len(),
            batches: self.shared.batches.load(Ordering::Relaxed),
            computed: self.shared.computed.load(Ordering::Relaxed),
            max_batch_observed: self.shared.max_batch_observed.load(Ordering::Relaxed),
            queue_depth: self.shared.queue_depth.load(Ordering::Relaxed),
            generation: self.shared.backend.generation(),
            shards: self.shared.backend.shard_counters(),
        }
    }

    /// Drop every cached entry (hot swap: results from the retired
    /// generation are tag-invalidated already; clearing reclaims their
    /// capacity immediately).
    pub(crate) fn clear_cache(&self) {
        self.shared.cache.lock().clear();
    }
}

impl<B: Backend> Drop for Engine<B> {
    fn drop(&mut self) {
        // Closing the channel lets the dispatcher answer everything still
        // queued, then exit; joining (dispatcher first, then any dedicated
        // pool via Shared's own drop) completes the graceful shutdown.
        drop(self.sender.take());
        if let Some(handle) = self.dispatcher.take() {
            let _ = handle.join();
        }
    }
}

/// Dispatcher: collect requests into micro-batches, compute each batch
/// once per distinct question, fan results back out to every waiter.
fn dispatch_loop<B: Backend>(shared: &Shared<B>, receiver: &Receiver<Request<B::Out>>) {
    while let Ok(first) = receiver.recv() {
        let mut batch = vec![first];
        let deadline = Instant::now() + shared.cfg.flush_timeout;
        while batch.len() < shared.cfg.max_batch {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            match receiver.recv_timeout(deadline - now) {
                Ok(req) => batch.push(req),
                Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => break,
            }
        }
        // Contain a panicking backend: dropping the batch drops its reply
        // senders, so only the affected waiters fail (their blocking call
        // re-raises) while the dispatcher survives to serve the next batch.
        let depth = batch.len() as u64;
        let contained = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_batch(shared, batch);
        }));
        // Answered or failed, these requests have left the queue — decrement
        // even when the batch panicked so the depth gauge can't drift up.
        shared.queue_depth.fetch_sub(depth, Ordering::Relaxed);
        if contained.is_err() {
            eprintln!("dbcopilot-serve: backend panicked on a batch; service continues");
        }
    }
    // Channel closed: `recv` already drained every queued request, so
    // nothing is left unanswered.
}

fn run_batch<B: Backend>(shared: &Shared<B>, batch: Vec<Request<B::Out>>) {
    // Deduplicate by normalized key, preserving first-seen order.
    let mut unique: Vec<(String, String)> = Vec::new();
    let mut waiters: Vec<Vec<Sender<Arc<B::Out>>>> = Vec::new();
    let mut seen: HashMap<String, usize> = HashMap::new();
    for req in batch {
        match seen.get(&req.key) {
            // dbc-lint: allow(panic-free-serving): `seen` only stores
            // indexes of entries already pushed onto `waiters`.
            Some(&at) => waiters[at].push(req.reply),
            None => {
                seen.insert(req.key.clone(), unique.len());
                unique.push((req.key, req.question));
                waiters.push(vec![req.reply]);
            }
        }
    }
    let results = shared.compute_unique(&unique);
    for (result, senders) in results.into_iter().zip(waiters) {
        for sender in senders {
            // A send error just means the client went away; nothing to do.
            let _ = sender.send(Arc::clone(&result));
        }
    }
}

// ---------------------------------------------------------------------
// the routing front
// ---------------------------------------------------------------------

pub(crate) struct RouteBackend<R> {
    handle: RouterHandle<R>,
    top_tables: usize,
}

impl<R: SchemaRouter + Send + Sync + 'static> Backend for RouteBackend<R> {
    type Out = RoutingResult;

    fn compute(&self, question: &str) -> RoutingResult {
        // Lease per request: the generation the request started on serves
        // it to completion, even if a publish swaps the handle mid-route.
        let lease = self.handle.lease();
        lease.router().route(question, self.top_tables)
    }

    fn thread_label() -> &'static str {
        "dbc-serve-dispatch"
    }

    fn generation(&self) -> u64 {
        self.handle.generation()
    }

    fn shard_counters(&self) -> Vec<ShardCounters> {
        self.handle.current().shard_counters()
    }
}

/// A concurrent serving front over a shared read-only router.
///
/// Clients call [`route`](RouterService::route) from any number of
/// threads; cache misses are micro-batched by a dispatcher thread and
/// executed on a persistent worker pool. Dropping the service is a
/// graceful shutdown: queued requests are still answered, then the
/// dispatcher (and any dedicated pool) joins.
pub struct RouterService<R: SchemaRouter + Send + Sync + 'static> {
    engine: Engine<RouteBackend<R>>,
}

impl<R: SchemaRouter + Send + Sync + 'static> RouterService<R> {
    /// Serve an already-shared router (published as generation 1).
    pub fn new(router: Arc<R>, cfg: ServiceConfig) -> Self {
        let backend =
            RouteBackend { handle: RouterHandle::new(router), top_tables: cfg.top_tables };
        RouterService { engine: Engine::new(backend, cfg) }
    }

    /// Take ownership of a router and serve it.
    pub fn from_router(router: R, cfg: ServiceConfig) -> Self {
        Self::new(Arc::new(router), cfg)
    }

    /// Take ownership of a precision-switchable router, apply
    /// `cfg.precision`, and serve it. The switch happens here — before the
    /// router goes behind the `Arc` — so quantized weights are frozen once,
    /// and every request (including [`warm`](RouterService::warm)-seeded
    /// cache entries) is scored at the configured precision.
    pub fn from_router_at(mut router: R, cfg: ServiceConfig) -> Self
    where
        R: PrecisionSwitch,
    {
        router.set_precision(cfg.precision);
        Self::new(Arc::new(router), cfg)
    }

    /// The currently-published router. Returns an owned `Arc` (not a
    /// borrow) because a concurrent [`publish`](RouterService::publish) can
    /// retire the slot's contents at any moment.
    pub fn router(&self) -> Arc<R> {
        self.engine.backend().handle.current()
    }

    /// The current router generation (starts at 1, +1 per publish).
    pub fn generation(&self) -> u64 {
        self.engine.backend().handle.generation()
    }

    /// Hot-swap the served router with zero dropped requests: atomically
    /// publish `router` as the next generation, wait for every in-flight
    /// request on the old generation to finish on the router it started
    /// with, then clear the cache (whose old-generation entries are already
    /// tag-invalidated — clearing reclaims their space). Requests arriving
    /// during the swap are served by the new router. Returns the new
    /// generation number.
    pub fn publish(&self, router: Arc<R>) -> u64 {
        let generation = self.engine.backend().handle.publish(router);
        self.engine.clear_cache();
        generation
    }

    /// Route one question: answered from the cache when possible,
    /// otherwise enqueued, micro-batched with concurrent misses, routed on
    /// the pool, and cached. Blocks until the result is available.
    pub fn route(&self, question: &str) -> Arc<RoutingResult> {
        self.engine.submit(question)
    }

    /// Route a slice of questions synchronously (no dispatcher, no flush
    /// timer): each `max_batch`-sized window is cache-checked, deduplicated
    /// and routed on the pool. Results come back in question order, and the
    /// whole call is deterministic — ideal for evaluation loops.
    pub fn route_many(&self, questions: &[String]) -> Vec<Arc<RoutingResult>> {
        self.engine.submit_many(questions)
    }

    /// Pre-seed the cache by routing `questions` (e.g. a known-popular
    /// workload) before traffic arrives.
    pub fn warm(&self, questions: &[String]) {
        let _ = self.route_many(questions);
    }

    /// Current serving counters.
    pub fn stats(&self) -> ServiceStats {
        self.engine.stats()
    }
}
