//! A capacity-bounded LRU cache with hit/miss counters, plus the question
//! normalization that makes surface variants of a question share a cache
//! entry.
//!
//! Eviction is strict least-recently-used and fully deterministic: the
//! recency list is an intrusive doubly-linked list over a slab, the
//! `HashMap` is only ever probed by key (its iteration order is never
//! observed), so two processes performing the same sequence of operations
//! hold exactly the same entries.

use std::collections::HashMap;

/// Slab sentinel for "no neighbor".
const NIL: usize = usize::MAX;

/// Normalize a question into its cache key: lowercase, whitespace
/// collapsed, trailing sentence punctuation dropped.
///
/// ```
/// use dbcopilot_serve::normalize_question;
/// assert_eq!(
///     normalize_question("  How many   SINGERS are there?? "),
///     "how many singers are there"
/// );
/// ```
pub fn normalize_question(question: &str) -> String {
    let mut out = String::with_capacity(question.len());
    for word in question.split_whitespace() {
        if !out.is_empty() {
            out.push(' ');
        }
        for ch in word.chars() {
            out.extend(ch.to_lowercase());
        }
    }
    while out.ends_with(['?', '.', '!']) {
        out.pop();
    }
    while out.ends_with(' ') {
        out.pop();
    }
    out
}

struct Entry<V> {
    key: String,
    value: V,
    prev: usize,
    next: usize,
}

/// A string-keyed LRU cache.
///
/// `capacity == 0` disables storage entirely: every [`LruCache::get`] is a
/// miss and [`LruCache::insert`] is a no-op — callers can keep one code
/// path and tune the capacity down to "off".
///
/// ```
/// use dbcopilot_serve::LruCache;
///
/// let mut cache: LruCache<u32> = LruCache::new(2);
/// cache.insert("a".into(), 1);
/// cache.insert("b".into(), 2);
/// assert_eq!(cache.get("a"), Some(&1)); // refreshes "a"
/// cache.insert("c".into(), 3);          // evicts "b", the LRU entry
/// assert_eq!(cache.get("b"), None);
/// assert_eq!((cache.hits(), cache.misses()), (1, 1));
/// ```
pub struct LruCache<V> {
    map: HashMap<String, usize>,
    slab: Vec<Entry<V>>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
    capacity: usize,
    hits: u64,
    misses: u64,
}

impl<V> LruCache<V> {
    /// Slab access. Every index stored in `map`, `head`, `tail`, `free`,
    /// or an entry's link fields refers to a live slab slot — that is the
    /// intrusive-list invariant every mutation below preserves, which is
    /// what makes the two indexing sites here infallible.
    fn entry(&self, idx: usize) -> &Entry<V> {
        // dbc-lint: allow(panic-free-serving): see the invariant above.
        &self.slab[idx]
    }

    fn entry_mut(&mut self, idx: usize) -> &mut Entry<V> {
        // dbc-lint: allow(panic-free-serving): see the invariant above.
        &mut self.slab[idx]
    }

    /// An empty cache holding at most `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        LruCache {
            map: HashMap::with_capacity(capacity.min(1 << 16)),
            slab: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
            hits: 0,
            misses: 0,
        }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Lookups that found an entry (each one also refreshed that entry).
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that found nothing.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Look up `key`, refreshing it to most-recently-used on a hit.
    pub fn get(&mut self, key: &str) -> Option<&V> {
        match self.map.get(key).copied() {
            Some(idx) => {
                self.hits += 1;
                self.unlink(idx);
                self.push_front(idx);
                Some(&self.entry(idx).value)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Insert (or overwrite) `key`, making it most-recently-used; evicts
    /// the least-recently-used entry when at capacity.
    pub fn insert(&mut self, key: String, value: V) {
        if self.capacity == 0 {
            return;
        }
        if let Some(&idx) = self.map.get(&key) {
            self.entry_mut(idx).value = value;
            self.unlink(idx);
            self.push_front(idx);
            return;
        }
        if self.map.len() == self.capacity {
            let lru = self.tail;
            self.unlink(lru);
            let evicted = std::mem::take(&mut self.entry_mut(lru).key);
            self.map.remove(&evicted);
            self.free.push(lru);
        }
        let idx = match self.free.pop() {
            Some(idx) => {
                *self.entry_mut(idx) = Entry { key: key.clone(), value, prev: NIL, next: NIL };
                idx
            }
            None => {
                self.slab.push(Entry { key: key.clone(), value, prev: NIL, next: NIL });
                self.slab.len() - 1
            }
        };
        self.map.insert(key, idx);
        self.push_front(idx);
    }

    /// Drop every entry, keeping capacity and the hit/miss counters. Used
    /// by router hot swap: results computed by a retired router generation
    /// must not be served under the new one.
    pub fn clear(&mut self) {
        self.map.clear();
        self.slab.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
    }

    /// Keys from most- to least-recently-used (tests, introspection).
    pub fn keys_by_recency(&self) -> Vec<&str> {
        let mut out = Vec::with_capacity(self.map.len());
        let mut idx = self.head;
        while idx != NIL {
            out.push(self.entry(idx).key.as_str());
            idx = self.entry(idx).next;
        }
        out
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = {
            let e = self.entry(idx);
            (e.prev, e.next)
        };
        if prev != NIL {
            self.entry_mut(prev).next = next;
        } else if self.head == idx {
            self.head = next;
        }
        if next != NIL {
            self.entry_mut(next).prev = prev;
        } else if self.tail == idx {
            self.tail = prev;
        }
        let e = self.entry_mut(idx);
        e.prev = NIL;
        e.next = NIL;
    }

    fn push_front(&mut self, idx: usize) {
        let head = self.head;
        {
            let e = self.entry_mut(idx);
            e.prev = NIL;
            e.next = head;
        }
        if head != NIL {
            self.entry_mut(head).prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eviction_follows_lru_order() {
        let mut c: LruCache<u32> = LruCache::new(3);
        for (k, v) in [("a", 1), ("b", 2), ("c", 3)] {
            c.insert(k.into(), v);
        }
        assert_eq!(c.keys_by_recency(), vec!["c", "b", "a"]);
        assert!(c.get("a").is_some()); // refresh a → b is now LRU
        c.insert("d".into(), 4);
        assert_eq!(c.keys_by_recency(), vec!["d", "a", "c"]);
        assert_eq!(c.get("b"), None);
        c.insert("e".into(), 5); // evicts c
        assert_eq!(c.get("c"), None);
        assert_eq!(c.get("a"), Some(&1));
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn capacity_zero_stores_nothing() {
        let mut c: LruCache<u32> = LruCache::new(0);
        c.insert("a".into(), 1);
        assert_eq!(c.get("a"), None);
        assert_eq!(c.len(), 0);
        assert_eq!((c.hits(), c.misses()), (0, 1));
    }

    #[test]
    fn capacity_one_always_holds_latest() {
        let mut c: LruCache<u32> = LruCache::new(1);
        c.insert("a".into(), 1);
        c.insert("b".into(), 2);
        assert_eq!(c.get("a"), None);
        assert_eq!(c.get("b"), Some(&2));
    }

    #[test]
    fn overwrite_refreshes_and_keeps_len() {
        let mut c: LruCache<u32> = LruCache::new(2);
        c.insert("a".into(), 1);
        c.insert("b".into(), 2);
        c.insert("a".into(), 10); // overwrite, a becomes MRU
        assert_eq!(c.len(), 2);
        c.insert("c".into(), 3); // evicts b
        assert_eq!(c.get("b"), None);
        assert_eq!(c.get("a"), Some(&10));
    }

    #[test]
    fn hit_miss_counters_track_lookups() {
        let mut c: LruCache<u32> = LruCache::new(2);
        assert_eq!(c.get("x"), None);
        c.insert("x".into(), 7);
        assert_eq!(c.get("x"), Some(&7));
        assert_eq!(c.get("x"), Some(&7));
        assert_eq!(c.get("y"), None);
        assert_eq!((c.hits(), c.misses()), (2, 2));
    }

    #[test]
    fn slab_slots_are_reused_after_eviction() {
        let mut c: LruCache<u32> = LruCache::new(2);
        for i in 0..100u32 {
            c.insert(format!("k{i}"), i);
        }
        assert!(c.slab.len() <= 3, "slab must recycle evicted slots, grew to {}", c.slab.len());
        assert_eq!(c.get("k99"), Some(&99));
        assert_eq!(c.get("k98"), Some(&98));
    }

    #[test]
    fn normalization_merges_surface_variants() {
        for q in [
            "How many singers are there?",
            "how  many singers are there",
            " HOW MANY SINGERS ARE THERE! ",
        ] {
            assert_eq!(normalize_question(q), "how many singers are there");
        }
        assert_eq!(normalize_question("???"), "");
    }
}
