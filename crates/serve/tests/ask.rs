//! AskService over a deterministic mock pipeline: answer caching (success
//! *and* typed failure), in-flight dedup, ordering, and parity with
//! direct pipeline calls.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use dbcopilot_graph::QuerySchema;
use dbcopilot_serve::{
    Answer, AskError, AskOptions, AskReport, AskService, ExecutionError, QueryPipeline,
    ScoredCandidate, ServiceConfig, SqlAttempt, StageTimings, TraceLevel,
};
use dbcopilot_sqlengine::{EngineError, ResultSet};

/// A pipeline that deterministically answers, fails on questions
/// containing "broken", and counts how many times it actually ran.
struct MockPipeline {
    calls: AtomicU64,
}

impl MockPipeline {
    fn new() -> Self {
        MockPipeline { calls: AtomicU64::new(0) }
    }

    fn calls(&self) -> u64 {
        self.calls.load(Ordering::SeqCst)
    }
}

impl QueryPipeline for MockPipeline {
    fn ask_with(&self, question: &str, _opts: &AskOptions) -> Result<AskReport, AskError> {
        self.calls.fetch_add(1, Ordering::SeqCst);
        if question.contains("broken") {
            let last = EngineError::Parse { message: format!("bad sql for {question:?}") };
            return Err(AskError::Execution(ExecutionError {
                attempts: vec![SqlAttempt {
                    candidate: 0,
                    database: "world".into(),
                    repair: 0,
                    prompt: None,
                    sql: Some("SELECT".into()),
                    outcome: dbcopilot_serve::AttemptOutcome::ExecutionError(last.clone()),
                }],
                last,
            }));
        }
        let schema = QuerySchema::new("world", vec!["city".into()]);
        let sql = format!("SELECT COUNT(*) FROM city -- {}", question.trim().to_lowercase());
        Ok(AskReport {
            question: question.to_string(),
            answer: Answer {
                schema: schema.clone(),
                sql,
                result: ResultSet::empty(),
                recovered_errors: Vec::new(),
            },
            candidates: vec![ScoredCandidate { schema, logp: -0.1 }],
            chosen: 0,
            attempts: Vec::new(),
            timings: StageTimings::default(),
        })
    }
}

#[test]
fn served_answers_match_direct_pipeline_calls() {
    let pipeline = Arc::new(MockPipeline::new());
    let opts = AskOptions::new().top_k(3).trace(TraceLevel::Stages);
    let service = AskService::new(Arc::clone(&pipeline), opts.clone(), ServiceConfig::default());
    for q in ["how many cities", "a broken question", "population of each city"] {
        let served = service.ask(q);
        let direct = pipeline.ask_with(q, &opts);
        match (served.as_ref(), &direct) {
            (Ok(s), Ok(d)) => assert_eq!(s.answer, d.answer, "question {q:?}"),
            (Err(s), Err(d)) => assert_eq!(s, d, "question {q:?}"),
            (s, d) => panic!("served {s:?} vs direct {d:?} disagree for {q:?}"),
        }
    }
}

#[test]
fn answers_and_failures_are_both_cached() {
    let pipeline = Arc::new(MockPipeline::new());
    let service =
        AskService::new(Arc::clone(&pipeline), AskOptions::default(), ServiceConfig::default());
    let first = service.ask("how many cities?");
    let again = service.ask("How  many CITIES"); // normalized variant
    assert_eq!(first.as_ref().as_ref().unwrap().answer, again.as_ref().as_ref().unwrap().answer);

    let fail_first = service.ask("a broken question");
    let fail_again = service.ask("a broken question");
    assert!(fail_first.is_err() && fail_again.is_err());

    let stats = service.stats();
    assert_eq!(stats.cache_hits, 2, "{stats:?}");
    assert_eq!(stats.computed, 2, "one ask per distinct question: {stats:?}");
    // the pipeline itself ran exactly once per distinct question — the
    // cache fronts full outcomes, success and typed failure alike
    assert_eq!(pipeline.calls(), 2);
}

#[test]
fn ask_many_orders_results_and_dedups() {
    let pipeline = Arc::new(MockPipeline::new());
    let service =
        AskService::new(Arc::clone(&pipeline), AskOptions::default(), ServiceConfig::default());
    let questions: Vec<String> = [
        "how many cities",
        "a broken question",
        "how many cities", // duplicate
        "population of each city",
    ]
    .map(String::from)
    .to_vec();
    let out = service.ask_many(&questions);
    assert_eq!(out.len(), 4);
    assert!(out[0].is_ok() && out[2].is_ok());
    assert!(out[1].is_err());
    assert_eq!(out[0].as_ref().as_ref().unwrap().answer, out[2].as_ref().as_ref().unwrap().answer);
    assert_eq!(pipeline.calls(), 3, "duplicate must not recompute");
}

#[test]
fn concurrent_clients_share_one_pipeline_run_per_question() {
    let pipeline = Arc::new(MockPipeline::new());
    let service =
        AskService::new(Arc::clone(&pipeline), AskOptions::default(), ServiceConfig::default());
    std::thread::scope(|s| {
        for client in 0..8 {
            let service = &service;
            s.spawn(move || {
                for round in 0..8 {
                    let q = format!("question number {}", (client + round) % 4);
                    let out = service.ask(&q);
                    assert!(out.is_ok(), "client {client} round {round}");
                }
            });
        }
    });
    // 4 distinct questions; dedup + cache keep pipeline runs near-minimal
    // (a duplicate can slip past the cache only while in flight).
    assert!(pipeline.calls() <= 12, "expected ~4 runs, got {}", pipeline.calls());
    let stats = service.stats();
    assert_eq!(stats.cache_hits + stats.cache_misses, 64);
}

#[test]
fn error_outcome_exposes_stage_and_source_chain() {
    let service = AskService::from_pipeline(
        MockPipeline::new(),
        AskOptions::default(),
        ServiceConfig::default(),
    );
    let outcome = service.ask("totally broken");
    let err = outcome.as_ref().as_ref().expect_err("mock fails on broken questions");
    assert_eq!(err.stage(), "execution");
    let dynerr: &dyn std::error::Error = err;
    let engine = dynerr.source().and_then(|s| s.source()).expect("chains to EngineError");
    assert!(engine.to_string().contains("parse error"), "{engine}");
}
