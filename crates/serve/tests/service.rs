//! Serving-layer integration: concurrent clients, micro-batch
//! deduplication, cache behavior under load, graceful shutdown, and
//! service-vs-direct result equivalence.

use std::sync::Arc;
use std::time::Duration;

use dbcopilot_retrieval::{Bm25Index, Bm25Params, SchemaRouter, Target, TargetSet};
use dbcopilot_serve::{RouterService, ServiceConfig};

fn index() -> Bm25Index {
    let targets = TargetSet {
        targets: vec![
            Target {
                database: "concert_singer".into(),
                table: "singer".into(),
                text: "singer name song age".into(),
            },
            Target {
                database: "concert_singer".into(),
                table: "concert".into(),
                text: "concert stadium year".into(),
            },
            Target {
                database: "world".into(),
                table: "city".into(),
                text: "city population".into(),
            },
            Target {
                database: "world".into(),
                table: "country".into(),
                text: "country code".into(),
            },
        ],
    };
    Bm25Index::build(targets, Bm25Params::default())
}

fn questions() -> Vec<String> {
    vec![
        "how many singers are there".into(),
        "population of each city".into(),
        "which concert happened last year".into(),
        "country with the largest population".into(),
    ]
}

#[test]
fn served_results_match_direct_routing() {
    let router = Arc::new(index());
    let service = RouterService::new(Arc::clone(&router), ServiceConfig::default());
    for q in &questions() {
        let served = service.route(q);
        let direct = router.route(q, 100);
        assert_eq!(served.database_names(), direct.database_names(), "question {q:?}");
        assert_eq!(served.tables.len(), direct.tables.len());
    }
}

#[test]
fn concurrent_clients_get_correct_answers_and_share_the_cache() {
    let service = RouterService::from_router(index(), ServiceConfig::default());
    let qs = questions();
    let expected: Vec<Vec<String>> = qs
        .iter()
        .map(|q| {
            service.router().route(q, 100).database_names().iter().map(|s| s.to_string()).collect()
        })
        .collect();

    std::thread::scope(|s| {
        for client in 0..8 {
            let (service, qs, expected) = (&service, &qs, &expected);
            s.spawn(move || {
                for round in 0..16 {
                    let i = (client + round) % qs.len();
                    let got = service.route(&qs[i]);
                    assert_eq!(got.database_names(), expected[i], "client {client} round {round}");
                }
            });
        }
    });

    let stats = service.stats();
    // 8 clients * 16 rounds = 128 lookups over 4 distinct questions: almost
    // everything is a cache hit, and at most a handful of routes happen
    // (duplicates can slip past the cache only while a question is in
    // flight for the first time).
    assert_eq!(stats.cache_hits + stats.cache_misses, 128);
    assert!(stats.cache_hits >= 100, "expected mostly hits, got {stats:?}");
    assert!(stats.computed >= 4, "all distinct questions must route: {stats:?}");
    assert_eq!(stats.cached, 4);
}

#[test]
fn in_flight_duplicates_are_deduplicated_within_a_batch() {
    // A wide flush window lets all clients land in one micro-batch.
    // no cache: dedup must come from batching alone
    let cfg = ServiceConfig::new()
        .max_batch(64)
        .flush_timeout(Duration::from_millis(50))
        .cache_capacity(0);
    let service = RouterService::from_router(index(), cfg);
    std::thread::scope(|s| {
        for _ in 0..6 {
            let service = &service;
            s.spawn(move || {
                let r = service.route("how many singers are there?");
                assert_eq!(r.database_names()[0], "concert_singer");
            });
        }
    });
    let stats = service.stats();
    assert!(stats.computed < 6, "identical in-flight questions should share a route: {stats:?}");
}

#[test]
fn route_many_is_deterministic_and_orders_results() {
    let service = RouterService::from_router(index(), ServiceConfig::default());
    let mut qs = questions();
    qs.extend(questions()); // duplicates exercise cache + dedup
    let a = service.route_many(&qs);
    let b = service.route_many(&qs);
    assert_eq!(a.len(), qs.len());
    for i in 0..qs.len() {
        assert_eq!(a[i].database_names(), b[i].database_names());
        let direct = service.router().route(&qs[i], 100);
        assert_eq!(a[i].database_names(), direct.database_names(), "question {i}");
    }
}

#[test]
fn normalized_variants_share_one_cache_entry() {
    let service = RouterService::from_router(index(), ServiceConfig::default());
    let _ = service.route("How many singers are there?");
    let _ = service.route("  how   many singers are THERE ");
    let _ = service.route("how many singers are there!");
    let stats = service.stats();
    assert_eq!(stats.cache_hits, 2, "{stats:?}");
    assert_eq!(stats.cached, 1);
    assert_eq!(stats.computed, 1);
}

#[test]
fn capacity_zero_service_still_serves() {
    let cfg = ServiceConfig::new().cache_capacity(0);
    let service = RouterService::from_router(index(), cfg);
    for _ in 0..3 {
        let r = service.route("population of each city");
        assert_eq!(r.database_names()[0], "world");
    }
    let stats = service.stats();
    assert_eq!(stats.cache_hits, 0);
    assert_eq!(stats.computed, 3);
}

#[test]
fn warm_preseeds_the_cache() {
    let service = RouterService::from_router(index(), ServiceConfig::default());
    service.warm(&questions());
    let before = service.stats();
    assert_eq!(before.cached, 4);
    let _ = service.route("how many singers are there");
    service.warm(&questions()); // all hits: no batches, no routes
    let after = service.stats();
    assert_eq!(after.computed, before.computed, "warm traffic must not re-route");
    assert_eq!(after.batches, before.batches, "hit-only windows must not count as batches");
    assert_eq!(after.cache_hits, before.cache_hits + 1 + 4);
}

#[test]
fn router_panic_hits_only_the_affected_caller_and_service_survives() {
    struct Flaky(Bm25Index);
    impl SchemaRouter for Flaky {
        fn name(&self) -> &str {
            "flaky"
        }
        fn route(&self, question: &str, top_tables: usize) -> dbcopilot_retrieval::RoutingResult {
            assert!(!question.contains("poison"), "poison question");
            self.0.route(question, top_tables)
        }
    }

    let service = RouterService::from_router(Flaky(index()), ServiceConfig::default());
    let poisoned = std::thread::scope(|s| s.spawn(|| service.route("a poison question")).join());
    assert!(poisoned.is_err(), "the poisoned caller must see the panic");
    // ...but the dispatcher survived: unrelated requests still serve.
    let r = service.route("population of each city");
    assert_eq!(r.database_names()[0], "world");
}

#[test]
fn eviction_under_tiny_capacity_keeps_serving_correctly() {
    let cfg = ServiceConfig::new().cache_capacity(2);
    let service = RouterService::from_router(index(), cfg);
    let qs = questions();
    for round in 0..3 {
        for (i, q) in qs.iter().enumerate() {
            let r = service.route(q);
            let direct = service.router().route(q, 100);
            assert_eq!(r.database_names(), direct.database_names(), "round {round} q {i}");
        }
    }
    assert_eq!(service.stats().cached, 2);
}

#[test]
fn drop_answers_queued_requests_then_shuts_down() {
    // Requests enqueued immediately before drop must still be answered:
    // the dispatcher drains its channel before exiting.
    let cfg = ServiceConfig::new().max_batch(4).flush_timeout(Duration::from_millis(20));
    let service = RouterService::from_router(index(), cfg);
    std::thread::scope(|s| {
        let mut handles = Vec::new();
        for _ in 0..4 {
            let service = &service;
            handles.push(s.spawn(move || service.route("country with the largest population")));
        }
        for h in handles {
            assert_eq!(h.join().unwrap().database_names()[0], "world");
        }
    });
    drop(service); // graceful: joins dispatcher (and any dedicated pool)
}

#[test]
fn dedicated_pool_configuration_works() {
    let cfg = ServiceConfig::new().workers(2);
    let service = RouterService::from_router(index(), cfg);
    let out = service.route_many(&questions());
    assert_eq!(out.len(), 4);
    assert_eq!(out[1].database_names()[0], "world");
}

#[test]
fn serves_a_dbc_router_end_to_end() {
    use dbcopilot_core::{DbcRouter, RouterConfig};
    use dbcopilot_graph::SchemaGraph;
    use dbcopilot_sqlengine::{Collection, DataType, DatabaseSchema, TableSchema};

    let mut c = Collection::new();
    for (db, tables) in
        [("concert_singer", vec!["singer", "concert"]), ("world", vec!["country", "city"])]
    {
        let mut d = DatabaseSchema::new(db);
        for t in tables {
            d.add_table(TableSchema::new(t).column("id", DataType::Int).primary(0));
        }
        c.add_database(d);
    }
    // An untrained router still produces valid, deterministic output, which
    // is all the serving path needs to be exercised.
    let router = DbcRouter::untrained(SchemaGraph::build(&c), RouterConfig::tiny());
    let service = RouterService::from_router(router, ServiceConfig::default());
    let first = service.route("how many vocalists");
    assert!(!first.databases.is_empty());
    let again = service.route("how many vocalists");
    assert_eq!(first.database_names(), again.database_names());
    assert_eq!(service.stats().cache_hits, 1);
}

#[test]
fn from_router_at_applies_precision_before_sharing_and_warm_uses_it() {
    use dbcopilot_core::{DbcRouter, RouterConfig};
    use dbcopilot_graph::SchemaGraph;
    use dbcopilot_retrieval::{PrecisionSwitch, RoutePrecision};
    use dbcopilot_sqlengine::{Collection, DataType, DatabaseSchema, TableSchema};

    let mut c = Collection::new();
    let mut d = DatabaseSchema::new("concert_singer");
    for t in ["singer", "concert"] {
        d.add_table(TableSchema::new(t).column("id", DataType::Int).primary(0));
    }
    c.add_database(d);

    let router = DbcRouter::untrained(SchemaGraph::build(&c), RouterConfig::tiny());
    let cfg = ServiceConfig::new().precision(RoutePrecision::I8);
    let service = RouterService::from_router_at(router, cfg);
    assert_eq!(service.router().precision(), RoutePrecision::I8);
    assert!(
        service.router().model.quant.is_some(),
        "quantized weights must be frozen before the router is shared"
    );

    // The warm path seeds the cache with i8-scored entries; a later route
    // of the same question is a cache hit, i.e. served at that precision.
    service.warm(&["how many vocalists".to_string()]);
    let served = service.route("how many vocalists");
    assert!(!served.databases.is_empty());
    assert_eq!(service.stats().cache_hits, 1);

    // Served results match direct i8 routing on an identical router.
    let mut direct =
        DbcRouter::untrained(service.router().graph.clone(), service.router().model.cfg.clone());
    direct.set_precision(RoutePrecision::I8);
    let expect = direct.route("how many vocalists", cfg_top_tables());
    assert_eq!(served.database_names(), expect.database_names());
    assert_eq!(served.tables, expect.tables);
}

fn cfg_top_tables() -> usize {
    ServiceConfig::default().top_tables
}

/// A router that answers every question with one fixed database — lets hot
/// swap tests tell apart which router generation served a request.
struct Tagged(&'static str);

impl SchemaRouter for Tagged {
    fn name(&self) -> &str {
        self.0
    }
    fn route(&self, _question: &str, _top_tables: usize) -> dbcopilot_retrieval::RoutingResult {
        dbcopilot_retrieval::RoutingResult {
            tables: vec![(self.0.to_string(), "t".to_string(), 1.0)],
            databases: vec![(self.0.to_string(), 1.0)],
        }
    }
}

#[test]
fn publish_swaps_the_router_under_concurrent_load_without_dropping_requests() {
    // No cache: every request must reach whichever router is current.
    let cfg = ServiceConfig::new().cache_capacity(0);
    let service = RouterService::from_router(Tagged("v1"), cfg);
    assert_eq!(service.generation(), 1);

    let answered = std::sync::atomic::AtomicU64::new(0);
    std::thread::scope(|s| {
        for client in 0..4 {
            let (service, answered) = (&service, &answered);
            s.spawn(move || {
                for round in 0..24 {
                    let r = service.route(&format!("client {client} round {round}"));
                    // Every request is answered by a complete generation —
                    // v1 before the swap, v2 after, never an error or an
                    // empty result.
                    let db = r.database_names()[0].to_string();
                    assert!(db == "v1" || db == "v2", "unexpected answer {db:?}");
                    answered.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                }
            });
        }
        // Swap mid-flight.
        let generation = service.publish(Arc::new(Tagged("v2")));
        assert_eq!(generation, 2);
    });

    assert_eq!(answered.load(std::sync::atomic::Ordering::Relaxed), 4 * 24, "zero drops");
    // publish returned only after the old generation drained, so every
    // request from here on is served by v2.
    assert_eq!(service.route("after the swap").database_names(), ["v2"]);
    assert_eq!(service.stats().generation, 2);
}

#[test]
fn publish_invalidates_cached_results() {
    let service = RouterService::from_router(Tagged("v1"), ServiceConfig::default());
    assert_eq!(service.route("the question").database_names(), ["v1"]);
    assert_eq!(service.stats().cached, 1);

    service.publish(Arc::new(Tagged("v2")));
    // The v1 answer was cached, but a cache entry only serves while the
    // generation that computed it is current: the same question now
    // recomputes on v2 instead of serving the stale hit.
    assert_eq!(service.route("the question").database_names(), ["v2"]);
    let stats = service.stats();
    assert_eq!(stats.generation, 2);
    assert_eq!(stats.computed, 2, "the post-swap lookup must recompute: {stats:?}");
}

#[test]
fn queue_depth_rises_under_a_blocked_backend_and_drains_to_zero() {
    use std::sync::atomic::{AtomicBool, Ordering};

    /// Blocks every route until the test opens the gate.
    struct Gated(Arc<AtomicBool>);
    impl SchemaRouter for Gated {
        fn name(&self) -> &str {
            "gated"
        }
        fn route(&self, _q: &str, _t: usize) -> dbcopilot_retrieval::RoutingResult {
            while !self.0.load(Ordering::Acquire) {
                std::thread::sleep(Duration::from_millis(1));
            }
            dbcopilot_retrieval::RoutingResult::default()
        }
    }

    let gate = Arc::new(AtomicBool::new(false));
    let cfg = ServiceConfig::new().cache_capacity(0).max_batch(1);
    let service = RouterService::from_router(Gated(Arc::clone(&gate)), cfg);
    assert_eq!(service.stats().queue_depth, 0);

    std::thread::scope(|s| {
        for i in 0..3 {
            let service = &service;
            s.spawn(move || service.route(&format!("question {i}")));
        }
        // The backend is blocked, so accepted requests pile up in the queue
        // and the stats snapshot sees them (the admission-control signal).
        while service.stats().queue_depth == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        gate.store(true, Ordering::Release);
    });
    // The gauge is a relaxed counter the dispatcher decrements just after
    // replying, so a caller can return a beat before its request is
    // uncounted — poll briefly instead of asserting the instant snapshot.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while service.stats().queue_depth != 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(1));
    }
    assert_eq!(service.stats().queue_depth, 0, "answered requests must leave the queue");
}

#[test]
fn stats_surface_generation_and_shard_counters_for_a_sharded_router() {
    use dbcopilot_core::{DbcRouter, RouterConfig, ShardedRouter};
    use dbcopilot_graph::SchemaGraph;
    use dbcopilot_sqlengine::{Collection, DataType, DatabaseSchema, TableSchema};

    let mut c = Collection::new();
    for (db, tables) in
        [("concert_singer", vec!["singer", "concert"]), ("world", vec!["country", "city"])]
    {
        let mut d = DatabaseSchema::new(db);
        for t in tables {
            d.add_table(TableSchema::new(t).column("id", DataType::Int).primary(0));
        }
        c.add_database(d);
    }
    let mono = DbcRouter::untrained(SchemaGraph::build(&c), RouterConfig::tiny());
    let service =
        RouterService::from_router(ShardedRouter::from_monolith(mono), ServiceConfig::default());

    let before = service.stats();
    assert_eq!(before.generation, 1);
    assert_eq!(before.shards.len(), 1);
    assert_eq!(before.shards[0].databases, 2);
    assert!(before.shards[0].loaded);

    let _ = service.route("how many vocalists");
    let after = service.stats();
    assert_eq!(after.shards[0].routes, 1, "served traffic must show up per shard: {after:?}");

    // A monolithic router surfaces no shards through the same stats path.
    let plain = RouterService::from_router(index(), ServiceConfig::default());
    assert!(plain.stats().shards.is_empty());
    assert_eq!(plain.stats().generation, 1);
}
