//! Offline vendored `#[derive(Serialize)]` / `#[derive(Deserialize)]`.
//!
//! The build environment has no crates.io access, so this proc-macro crate
//! is written against the bare `proc_macro` API — no `syn`, no `quote`. It
//! parses the derive input by walking the token stream and emits impls of
//! the value-model traits in the vendored `serde` crate.
//!
//! Supported input shapes (everything this workspace uses):
//! * structs with named fields, including `#[serde(skip)]` and
//!   `#[serde(default)]` field attributes;
//! * tuple structs (newtype arity-1 serializes transparently);
//! * unit structs;
//! * enums with unit, tuple, and struct variants (externally tagged:
//!   `"Variant"` for unit, `{"Variant": ...}` otherwise);
//! * type generics (`Trie<P>`), which receive `P: serde::Serialize` /
//!   `P: serde::Deserialize` bounds. Lifetimes, const generics, and where
//!   clauses are not supported.

use proc_macro::{Delimiter, TokenStream, TokenTree};

// ---------------------------------------------------------------------------
// parsed shape
// ---------------------------------------------------------------------------

struct Input {
    name: String,
    /// Type-parameter names, e.g. `["P"]` for `Trie<P>`.
    generics: Vec<String>,
    kind: Kind,
}

enum Kind {
    Named(Vec<Field>),
    Tuple(usize),
    Unit,
    Enum(Vec<Variant>),
}

struct Field {
    name: String,
    skip: bool,
    default: bool,
}

struct Variant {
    name: String,
    data: VariantData,
}

enum VariantData {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

// ---------------------------------------------------------------------------
// token-walking parser
// ---------------------------------------------------------------------------

fn is_punct(t: &TokenTree, c: char) -> bool {
    matches!(t, TokenTree::Punct(p) if p.as_char() == c)
}

fn is_ident(t: &TokenTree, s: &str) -> bool {
    matches!(t, TokenTree::Ident(id) if id.to_string() == s)
}

/// Skip `#[...]` attributes and visibility, returning serde attr flags seen.
fn skip_attrs_and_vis(toks: &[TokenTree], i: &mut usize) -> (bool, bool) {
    let mut skip = false;
    let mut default = false;
    loop {
        if *i < toks.len() && is_punct(&toks[*i], '#') {
            if let Some(TokenTree::Group(g)) = toks.get(*i + 1) {
                let inner = g.stream().to_string();
                // `serde(skip)` / `serde(default)`; `to_string` may insert
                // spaces, so match on the attribute path + argument words.
                if inner.starts_with("serde") {
                    if inner.contains("skip") {
                        skip = true;
                    }
                    if inner.contains("default") {
                        default = true;
                    }
                }
            }
            *i += 2;
        } else if *i < toks.len() && is_ident(&toks[*i], "pub") {
            *i += 1;
            if let Some(TokenTree::Group(g)) = toks.get(*i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *i += 1; // pub(crate), pub(super), ...
                }
            }
        } else {
            return (skip, default);
        }
    }
}

/// Advance past a type (or expression) until a top-level `,`, tracking
/// angle-bracket depth. Leaves `i` past the comma (or at end).
fn skip_until_toplevel_comma(toks: &[TokenTree], i: &mut usize) {
    let mut depth: i32 = 0;
    while *i < toks.len() {
        if let TokenTree::Punct(p) = &toks[*i] {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    *i += 1;
                    return;
                }
                _ => {}
            }
        }
        *i += 1;
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut out = Vec::new();
    while i < toks.len() {
        let (skip, default) = skip_attrs_and_vis(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        let name = match &toks[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive: expected field name, found `{other}`"),
        };
        i += 1;
        assert!(is_punct(&toks[i], ':'), "serde_derive: expected `:` after field `{name}`");
        i += 1;
        skip_until_toplevel_comma(&toks, &mut i);
        out.push(Field { name, skip, default });
    }
    out
}

/// Arity of a tuple struct/variant body: top-level comma count + 1 (0 when
/// the parenthesized group is empty), ignoring a trailing comma.
fn tuple_arity(stream: TokenStream) -> usize {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    if toks.is_empty() {
        return 0;
    }
    let mut i = 0;
    let mut arity = 0;
    while i < toks.len() {
        // Per-element attributes/vis are legal; skip them so a leading
        // `#[...]` or `pub` doesn't confuse the type scan.
        let _ = skip_attrs_and_vis(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        skip_until_toplevel_comma(&toks, &mut i);
        arity += 1;
    }
    arity
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut out = Vec::new();
    while i < toks.len() {
        let _ = skip_attrs_and_vis(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        let name = match &toks[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive: expected variant name, found `{other}`"),
        };
        i += 1;
        let data = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = tuple_arity(g.stream());
                i += 1;
                VariantData::Tuple(arity)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                i += 1;
                VariantData::Struct(fields)
            }
            _ => VariantData::Unit,
        };
        // discriminant (`= expr`) and/or separator
        skip_until_toplevel_comma(&toks, &mut i);
        out.push(Variant { name, data });
    }
    out
}

fn parse_input(input: TokenStream) -> Input {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let _ = skip_attrs_and_vis(&toks, &mut i);

    let is_enum = if is_ident(&toks[i], "struct") {
        false
    } else if is_ident(&toks[i], "enum") {
        true
    } else {
        panic!("serde_derive: expected `struct` or `enum`, found `{}`", toks[i]);
    };
    i += 1;

    let name = match &toks[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected type name, found `{other}`"),
    };
    i += 1;

    // generics: collect type-parameter idents at angle depth 1
    let mut generics = Vec::new();
    if i < toks.len() && is_punct(&toks[i], '<') {
        i += 1;
        let mut depth = 1i32;
        let mut expect_param = true; // at the start of a parameter chunk
        while i < toks.len() && depth > 0 {
            match &toks[i] {
                TokenTree::Punct(p) => match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 1 => expect_param = true,
                    '\'' => panic!(
                        "serde_derive: lifetime parameters are not supported (type `{name}`)"
                    ),
                    _ => {}
                },
                TokenTree::Ident(id) if depth == 1 && expect_param => {
                    let s = id.to_string();
                    if s == "const" {
                        panic!("serde_derive: const generics are not supported (type `{name}`)");
                    }
                    generics.push(s);
                    expect_param = false; // bounds (`: Trait`) are skipped
                }
                _ => {}
            }
            i += 1;
        }
    }

    // skip an (unsupported-but-tolerated-if-trivial) where clause up to the body
    while i < toks.len() {
        match &toks[i] {
            TokenTree::Group(g)
                if g.delimiter() == Delimiter::Brace || g.delimiter() == Delimiter::Parenthesis =>
            {
                break
            }
            t if is_punct(t, ';') => break,
            t if is_ident(t, "where") => {
                panic!("serde_derive: where clauses are not supported (type `{name}`)")
            }
            _ => i += 1,
        }
    }

    let kind = match toks.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            if is_enum {
                Kind::Enum(parse_variants(g.stream()))
            } else {
                Kind::Named(parse_named_fields(g.stream()))
            }
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            assert!(!is_enum, "serde_derive: malformed enum body");
            Kind::Tuple(tuple_arity(g.stream()))
        }
        Some(t) if is_punct(t, ';') => Kind::Unit,
        other => panic!("serde_derive: expected type body, found `{other:?}`"),
    };

    Input { name, generics, kind }
}

// ---------------------------------------------------------------------------
// code generation (string-assembled, parsed back into a TokenStream)
// ---------------------------------------------------------------------------

impl Input {
    /// `<P: ::serde::Serialize>` (or empty) for the impl header.
    fn impl_generics(&self, bound: &str) -> String {
        if self.generics.is_empty() {
            String::new()
        } else {
            let params: Vec<String> =
                self.generics.iter().map(|g| format!("{g}: {bound}")).collect();
            format!("<{}>", params.join(", "))
        }
    }

    /// `<P>` (or empty) for the type being implemented.
    fn type_generics(&self) -> String {
        if self.generics.is_empty() {
            String::new()
        } else {
            format!("<{}>", self.generics.join(", "))
        }
    }
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    let name = &input.name;
    let body = match &input.kind {
        Kind::Named(fields) => {
            let pushes: String = fields
                .iter()
                .filter(|f| !f.skip)
                .map(|f| {
                    format!(
                        "__fields.push((\"{n}\".to_string(), ::serde::Serialize::serialize(&self.{n})));\n",
                        n = f.name
                    )
                })
                .collect();
            format!(
                "let mut __fields: Vec<(String, ::serde::Value)> = Vec::new();\n\
                 {pushes}::serde::Value::Object(__fields)"
            )
        }
        Kind::Tuple(1) => "::serde::Serialize::serialize(&self.0)".to_string(),
        Kind::Tuple(n) => {
            let elems: Vec<String> =
                (0..*n).map(|i| format!("::serde::Serialize::serialize(&self.{i})")).collect();
            format!("::serde::Value::Array(vec![{}])", elems.join(", "))
        }
        Kind::Unit => "::serde::Value::Null".to_string(),
        Kind::Enum(variants) => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.data {
                        VariantData::Unit => format!(
                            "{name}::{vn} => ::serde::Value::String(\"{vn}\".to_string()),\n"
                        ),
                        VariantData::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                            let payload = if *n == 1 {
                                "::serde::Serialize::serialize(__f0)".to_string()
                            } else {
                                let elems: Vec<String> = binds
                                    .iter()
                                    .map(|b| format!("::serde::Serialize::serialize({b})"))
                                    .collect();
                                format!("::serde::Value::Array(vec![{}])", elems.join(", "))
                            };
                            format!(
                                "{name}::{vn}({binds}) => ::serde::Value::Object(vec![(\"{vn}\".to_string(), {payload})]),\n",
                                binds = binds.join(", ")
                            )
                        }
                        VariantData::Struct(fields) => {
                            let binds: Vec<&str> =
                                fields.iter().map(|f| f.name.as_str()).collect();
                            let pushes: Vec<String> = fields
                                .iter()
                                .filter(|f| !f.skip)
                                .map(|f| {
                                    format!(
                                        "(\"{n}\".to_string(), ::serde::Serialize::serialize({n}))",
                                        n = f.name
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => ::serde::Value::Object(vec![(\"{vn}\".to_string(), ::serde::Value::Object(vec![{pushes}]))]),\n",
                                binds = binds.join(", "),
                                pushes = pushes.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{\n{arms}}}")
        }
    };
    let code = format!(
        "impl{ig} ::serde::Serialize for {name}{tg} {{\n\
             fn serialize(&self) -> ::serde::Value {{\n{body}\n}}\n\
         }}",
        ig = input.impl_generics("::serde::Serialize"),
        tg = input.type_generics(),
    );
    code.parse().expect("serde_derive: generated Serialize impl failed to parse")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    let name = &input.name;
    let body = match &input.kind {
        Kind::Named(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    let n = &f.name;
                    if f.skip {
                        format!("{n}: ::core::default::Default::default()")
                    } else if f.default {
                        format!("{n}: ::serde::de_field_default(__v, \"{n}\")?")
                    } else {
                        format!("{n}: ::serde::de_field(__v, \"{n}\")?")
                    }
                })
                .collect();
            format!("Ok({name} {{ {} }})", inits.join(", "))
        }
        Kind::Tuple(1) => format!("Ok({name}(::serde::Deserialize::deserialize(__v)?))"),
        Kind::Tuple(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::deserialize(&__items[{i}])?"))
                .collect();
            format!(
                "match __v {{\n\
                     ::serde::Value::Array(__items) if __items.len() == {n} => \
                         Ok({name}({elems})),\n\
                     _ => Err(::serde::DeError::msg(\
                         \"{name}: expected array of length {n}\")),\n\
                 }}",
                elems = elems.join(", ")
            )
        }
        Kind::Unit => format!(
            "match __v {{\n\
                 ::serde::Value::Null => Ok({name}),\n\
                 _ => Err(::serde::DeError::msg(\"{name}: expected null\")),\n\
             }}"
        ),
        Kind::Enum(variants) => {
            let unit_arms: String = variants
                .iter()
                .filter(|v| matches!(v.data, VariantData::Unit))
                .map(|v| format!("\"{vn}\" => Ok({name}::{vn}),\n", vn = v.name))
                .collect();
            let data_arms: String = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.data {
                        VariantData::Unit => None,
                        VariantData::Tuple(1) => Some(format!(
                            "\"{vn}\" => Ok({name}::{vn}(::serde::Deserialize::deserialize(__val)?)),\n"
                        )),
                        VariantData::Tuple(n) => {
                            let elems: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Deserialize::deserialize(&__items[{i}])?"))
                                .collect();
                            Some(format!(
                                "\"{vn}\" => match __val {{\n\
                                     ::serde::Value::Array(__items) if __items.len() == {n} => \
                                         Ok({name}::{vn}({elems})),\n\
                                     _ => Err(::serde::DeError::msg(\
                                         \"{name}::{vn}: expected array of length {n}\")),\n\
                                 }},\n",
                                elems = elems.join(", ")
                            ))
                        }
                        VariantData::Struct(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    let n = &f.name;
                                    if f.skip {
                                        format!("{n}: ::core::default::Default::default()")
                                    } else if f.default {
                                        format!("{n}: ::serde::de_field_default(__val, \"{n}\")?")
                                    } else {
                                        format!("{n}: ::serde::de_field(__val, \"{n}\")?")
                                    }
                                })
                                .collect();
                            Some(format!(
                                "\"{vn}\" => Ok({name}::{vn} {{ {} }}),\n",
                                inits.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "match __v {{\n\
                     ::serde::Value::String(__s) => match __s.as_str() {{\n\
                         {unit_arms}\
                         __other => Err(::serde::DeError::msg(format!(\
                             \"{name}: unknown unit variant `{{__other}}`\"))),\n\
                     }},\n\
                     ::serde::Value::Object(__fields) if __fields.len() == 1 => {{\n\
                         let (__tag, __val) = &__fields[0];\n\
                         match __tag.as_str() {{\n\
                             {data_arms}\
                             __other => Err(::serde::DeError::msg(format!(\
                                 \"{name}: unknown variant `{{__other}}`\"))),\n\
                         }}\n\
                     }}\n\
                     _ => Err(::serde::DeError::msg(\
                         \"{name}: expected string or single-key object\")),\n\
                 }}"
            )
        }
    };
    let code = format!(
        "impl{ig} ::serde::Deserialize for {name}{tg} {{\n\
             fn deserialize(__v: &::serde::Value) -> ::core::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n\
         }}",
        ig = input.impl_generics("::serde::Deserialize"),
        tg = input.type_generics(),
    );
    code.parse().expect("serde_derive: generated Deserialize impl failed to parse")
}
