//! Offline vendored subset of the `criterion` benchmarking API.
//!
//! The build environment has no crates.io access, so this crate provides a
//! small but functional harness with the surface the workspace's benches
//! use: [`Criterion`] (`sample_size`, `bench_function`, `benchmark_group`),
//! [`BenchmarkGroup`] (`bench_function`, `bench_with_input`, `finish`),
//! [`BenchmarkId`], [`black_box`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Measurement is simple: a short warm-up, then `sample_size` samples of an
//! adaptively chosen number of iterations each; the mean / p50 / p95 / min
//! / max per-iteration time is printed to stdout (p50/p95 are
//! nearest-rank percentiles over the samples, so tail latency is visible
//! for serving-style benches). No outlier rejection, no HTML reports, no
//! baseline storage.
//!
//! ```
//! use criterion::{black_box, Criterion};
//!
//! let mut c = Criterion::default().sample_size(2);
//! c.bench_function("add", |b| b.iter(|| black_box(1u64) + black_box(2)));
//! ```

use std::fmt;
use std::time::{Duration, Instant};

/// Prevent the optimizer from deleting a computed value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for a parameterized benchmark.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Per-benchmark timing driver handed to the closure.
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Bencher { sample_size, samples: Vec::new(), iters_per_sample: 1 }
    }

    /// Measure `f`, recording `sample_size` samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and iteration-count calibration: target ~5ms per sample,
        // capped so slow benches still finish promptly.
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let target = Duration::from_millis(5);
        self.iters_per_sample = (target.as_nanos() / once.as_nanos()).clamp(1, 10_000) as u64;

        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(f());
            }
            self.samples.push(start.elapsed());
        }
    }

    fn report(&self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:<40} (no samples)");
            return;
        }
        let per_iter: Vec<f64> =
            self.samples.iter().map(|d| d.as_secs_f64() / self.iters_per_sample as f64).collect();
        let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
        let mut sorted = per_iter.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        println!(
            "{name:<40} mean {:>12} p50 {:>12} p95 {:>12} min {:>12} max {:>12} ({} samples x {} iters)",
            fmt_time(mean),
            fmt_time(percentile(&sorted, 0.50)),
            fmt_time(percentile(&sorted, 0.95)),
            fmt_time(sorted[0]),
            fmt_time(sorted[sorted.len() - 1]),
            self.samples.len(),
            self.iters_per_sample,
        );
    }
}

/// Nearest-rank percentile of an ascending-sorted, non-empty sample list.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        b.report(name);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("-- group: {name} --");
        BenchmarkGroup { criterion: self, group: name.to_string() }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    group: String,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::new(self.criterion.sample_size);
        f(&mut b);
        b.report(&format!("{}/{}", self.group, id));
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::new(self.criterion.sample_size);
        f(&mut b, input);
        b.report(&format!("{}/{}", self.group, id));
        self
    }

    pub fn finish(self) {}
}

/// Declare a group of benchmark functions (both criterion forms supported).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generate `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // cargo passes `--bench` (and possibly filters) to the harness
            // binary; this minimal harness runs everything regardless.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default().sample_size(3);
        let mut runs = 0u64;
        c.bench_function("counter", |b| b.iter(|| runs += 1));
        assert!(runs > 3, "closure should run warmup + samples, ran {runs}");
    }

    #[test]
    fn nearest_rank_percentiles() {
        let sorted: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile(&sorted, 0.50), 50.0);
        assert_eq!(percentile(&sorted, 0.95), 95.0);
        assert_eq!(percentile(&sorted, 1.0), 100.0);
        // tiny sample lists degrade gracefully
        assert_eq!(percentile(&[7.5], 0.50), 7.5);
        assert_eq!(percentile(&[7.5], 0.95), 7.5);
        assert_eq!(percentile(&[1.0, 2.0], 0.95), 2.0);
        assert_eq!(percentile(&[1.0, 2.0], 0.10), 1.0);
    }

    #[test]
    fn group_and_ids() {
        let mut c = Criterion::default().sample_size(2);
        let mut group = c.benchmark_group("g");
        group.bench_with_input(BenchmarkId::from_parameter("p"), &7u32, |b, &x| {
            b.iter(|| black_box(x) * 2)
        });
        group.bench_function("plain", |b| b.iter(|| black_box(1u8)));
        group.finish();
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
    }
}
