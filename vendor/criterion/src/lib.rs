//! Offline vendored subset of the `criterion` benchmarking API.
//!
//! The build environment has no crates.io access, so this crate provides a
//! small but functional harness with the surface the workspace's benches
//! use: [`Criterion`] (`sample_size`, `bench_function`, `benchmark_group`),
//! [`BenchmarkGroup`] (`bench_function`, `bench_with_input`, `finish`),
//! [`BenchmarkId`], [`black_box`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Measurement: a short warm-up, then `sample_size` samples of an
//! adaptively chosen number of iterations each. Per-iteration sample times
//! pass through Tukey-fence IQR outlier rejection (scheduler blips on a
//! loaded machine land far outside the fences and are discarded), then the
//! mean / p50 / p95 / min / max of the surviving samples is printed.
//!
//! Beyond printing, every result is recorded in a process-global registry,
//! which powers the regression gate:
//!
//! * `--save-baseline <path>` writes the run's results as JSON;
//! * `--compare <path>` prints a per-benchmark delta against a saved
//!   baseline and makes the process exit non-zero if any benchmark's p50
//!   regressed past `--threshold <pct>` (default 10%).
//!
//! Both flags are consumed by the `main` that [`criterion_main!`] expands
//! to (`cargo bench --bench routing -- --compare benches/baselines/x.json`);
//! unknown flags — cargo's own `--bench`, test filters — are ignored. No
//! HTML reports.
//!
//! ```
//! use criterion::{black_box, Criterion};
//!
//! let mut c = Criterion::default().sample_size(2);
//! c.bench_function("add", |b| b.iter(|| black_box(1u64) + black_box(2)));
//! ```

use std::fmt;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use serde::Value;

/// Prevent the optimizer from deleting a computed value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for a parameterized benchmark.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

// ---------------------------------------------------------------------------
// results registry
// ---------------------------------------------------------------------------

/// One benchmark's robust summary (post outlier rejection), in nanoseconds.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchResult {
    pub name: String,
    pub mean_ns: f64,
    pub p50_ns: f64,
    /// Samples surviving IQR rejection.
    pub samples: usize,
    /// Samples discarded by the Tukey fences.
    pub outliers_rejected: usize,
}

/// Process-global registry of results from this run. A global is required
/// because [`criterion_group!`]-generated functions each construct their
/// own [`Criterion`], yet `--save-baseline`/`--compare` operate on the
/// whole run.
static RESULTS: Mutex<Vec<BenchResult>> = Mutex::new(Vec::new());

fn record(result: BenchResult) {
    RESULTS.lock().unwrap_or_else(std::sync::PoisonError::into_inner).push(result);
}

/// Drain all results recorded so far (called by the generated `main`).
pub fn take_results() -> Vec<BenchResult> {
    std::mem::take(&mut *RESULTS.lock().unwrap_or_else(std::sync::PoisonError::into_inner))
}

// ---------------------------------------------------------------------------
// measurement
// ---------------------------------------------------------------------------

/// Per-benchmark timing driver handed to the closure.
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Bencher { sample_size, samples: Vec::new(), iters_per_sample: 1 }
    }

    /// Measure `f`, recording `sample_size` samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and iteration-count calibration: target ~5ms per sample,
        // capped so slow benches still finish promptly.
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let target = Duration::from_millis(5);
        self.iters_per_sample = (target.as_nanos() / once.as_nanos()).clamp(1, 10_000) as u64;

        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(f());
            }
            self.samples.push(start.elapsed());
        }
    }

    fn report(&self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:<40} (no samples)");
            return;
        }
        let per_iter: Vec<f64> =
            self.samples.iter().map(|d| d.as_secs_f64() / self.iters_per_sample as f64).collect();
        let (kept, rejected) = reject_outliers(&per_iter);
        let mean = kept.iter().sum::<f64>() / kept.len() as f64;
        println!(
            "{name:<40} mean {:>12} p50 {:>12} p95 {:>12} min {:>12} max {:>12} ({} samples x {} iters{})",
            fmt_time(mean),
            fmt_time(percentile(&kept, 0.50)),
            fmt_time(percentile(&kept, 0.95)),
            fmt_time(kept[0]),
            fmt_time(kept[kept.len() - 1]),
            kept.len(),
            self.iters_per_sample,
            if rejected > 0 { format!(", {rejected} outliers rejected") } else { String::new() },
        );
        record(BenchResult {
            name: name.to_string(),
            mean_ns: mean * 1e9,
            p50_ns: percentile(&kept, 0.50) * 1e9,
            samples: kept.len(),
            outliers_rejected: rejected,
        });
    }
}

/// Tukey-fence IQR outlier rejection: samples outside
/// `[q1 - 1.5·IQR, q3 + 1.5·IQR]` are discarded. Returns the surviving
/// samples ascending-sorted plus the rejected count. Fewer than 4 samples
/// can't anchor quartiles — everything is kept.
fn reject_outliers(samples: &[f64]) -> (Vec<f64>, usize) {
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    if sorted.len() < 4 {
        return (sorted, 0);
    }
    let q1 = percentile(&sorted, 0.25);
    let q3 = percentile(&sorted, 0.75);
    let iqr = q3 - q1;
    let (lo, hi) = (q1 - 1.5 * iqr, q3 + 1.5 * iqr);
    let kept: Vec<f64> = sorted.iter().copied().filter(|&v| v >= lo && v <= hi).collect();
    let rejected = sorted.len() - kept.len();
    (kept, rejected)
}

/// Nearest-rank percentile of an ascending-sorted, non-empty sample list.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

// ---------------------------------------------------------------------------
// baselines and comparison
// ---------------------------------------------------------------------------

/// Harness options parsed from the bench binary's CLI arguments.
#[derive(Debug, Clone, PartialEq)]
pub struct RunConfig {
    /// Write this run's results to the given JSON file.
    pub save_baseline: Option<String>,
    /// Compare this run's results against the given JSON baseline.
    pub compare: Option<String>,
    /// Regression threshold in percent for `--compare` (on p50).
    pub threshold_pct: f64,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig { save_baseline: None, compare: None, threshold_pct: 10.0 }
    }
}

/// Parse harness flags, tolerating everything cargo injects (`--bench`,
/// test-name filters, `--exact`, ...). Both `--flag value` and
/// `--flag=value` forms are accepted.
pub fn parse_args<I: Iterator<Item = String>>(mut args: I) -> RunConfig {
    let mut cfg = RunConfig::default();
    while let Some(arg) = args.next() {
        let mut take = |flag: &str| -> Option<String> {
            if arg == flag {
                args.next()
            } else {
                arg.strip_prefix(flag).and_then(|r| r.strip_prefix('=')).map(String::from)
            }
        };
        if let Some(path) = take("--save-baseline") {
            cfg.save_baseline = Some(path);
        } else if let Some(path) = take("--compare") {
            cfg.compare = Some(path);
        } else if let Some(t) = take("--threshold") {
            if let Ok(pct) = t.parse() {
                cfg.threshold_pct = pct;
            }
        }
    }
    cfg
}

fn results_to_json(results: &[BenchResult]) -> Value {
    Value::Object(vec![
        ("format".to_string(), Value::UInt(1)),
        (
            "benchmarks".to_string(),
            Value::Array(
                results
                    .iter()
                    .map(|r| {
                        Value::Object(vec![
                            ("name".to_string(), Value::String(r.name.clone())),
                            ("mean_ns".to_string(), Value::Float(r.mean_ns)),
                            ("p50_ns".to_string(), Value::Float(r.p50_ns)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn json_num(v: &Value) -> Option<f64> {
    match v {
        Value::Int(i) => Some(*i as f64),
        Value::UInt(u) => Some(*u as f64),
        Value::Float(f) => Some(*f),
        _ => None,
    }
}

/// A saved baseline: `(name, p50_ns)` per benchmark, in file order.
pub fn parse_baseline(json: &str) -> Result<Vec<(String, f64)>, String> {
    let v: Value = serde_json::from_str(json).map_err(|e| e.to_string())?;
    let benches = v
        .get("benchmarks")
        .and_then(Value::as_array)
        .ok_or("baseline has no \"benchmarks\" array")?;
    let mut out = Vec::with_capacity(benches.len());
    for b in benches {
        let name = b
            .get("name")
            .and_then(Value::as_str)
            .ok_or("baseline benchmark entry lacks a \"name\"")?;
        let p50 = b
            .get("p50_ns")
            .and_then(json_num)
            .ok_or_else(|| format!("baseline entry {name:?} lacks \"p50_ns\""))?;
        out.push((name.to_string(), p50));
    }
    Ok(out)
}

/// Render results as the baseline JSON document.
pub fn baseline_json(results: &[BenchResult]) -> String {
    serde_json::to_string(&results_to_json(results)).expect("baseline JSON is always serializable")
}

/// One row of a `--compare` report.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    pub name: String,
    pub baseline_p50_ns: f64,
    pub current_p50_ns: f64,
    /// `(current − baseline) / baseline · 100`; negative is faster.
    pub delta_pct: f64,
    /// `delta_pct > threshold`.
    pub regressed: bool,
}

/// Compare current results against a baseline. Benchmarks missing on
/// either side are skipped (filters and newly added benches must not read
/// as regressions); the comparison covers the intersection, in baseline
/// order.
pub fn compare_results(
    current: &[BenchResult],
    baseline: &[(String, f64)],
    threshold_pct: f64,
) -> Vec<Comparison> {
    baseline
        .iter()
        .filter_map(|(name, base_p50)| {
            let cur = current.iter().find(|r| &r.name == name)?;
            // A sub-nanosecond baseline is noise-floor; avoid dividing by ~0.
            let delta_pct = (cur.p50_ns - base_p50) / base_p50.max(1e-3) * 100.0;
            Some(Comparison {
                name: name.clone(),
                baseline_p50_ns: *base_p50,
                current_p50_ns: cur.p50_ns,
                delta_pct,
                regressed: delta_pct > threshold_pct,
            })
        })
        .collect()
}

/// Apply `--save-baseline` / `--compare` to the drained results registry
/// and return the process exit code: 0 clean, 1 regression past threshold,
/// 2 harness I/O error. Called by the `main` that [`criterion_main!`]
/// generates.
pub fn finish(cfg: &RunConfig) -> i32 {
    let results = take_results();
    if let Some(path) = &cfg.save_baseline {
        if let Some(dir) = std::path::Path::new(path).parent() {
            if !dir.as_os_str().is_empty() {
                if let Err(e) = std::fs::create_dir_all(dir) {
                    eprintln!("criterion: cannot create baseline directory {dir:?}: {e}");
                    return 2;
                }
            }
        }
        if let Err(e) = std::fs::write(path, baseline_json(&results)) {
            eprintln!("criterion: cannot write baseline {path:?}: {e}");
            return 2;
        }
        println!("saved baseline: {path} ({} benchmarks)", results.len());
    }
    if let Some(path) = &cfg.compare {
        let json = match std::fs::read_to_string(path) {
            Ok(json) => json,
            Err(e) => {
                eprintln!("criterion: cannot read baseline {path:?}: {e}");
                return 2;
            }
        };
        let baseline = match parse_baseline(&json) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("criterion: malformed baseline {path:?}: {e}");
                return 2;
            }
        };
        let comps = compare_results(&results, &baseline, cfg.threshold_pct);
        println!("== baseline comparison (threshold +{:.1}%) ==", cfg.threshold_pct);
        for c in &comps {
            println!(
                "{:<40} baseline {:>12} current {:>12} delta {:>+7.1}% {}",
                c.name,
                fmt_time(c.baseline_p50_ns / 1e9),
                fmt_time(c.current_p50_ns / 1e9),
                c.delta_pct,
                if c.regressed { "REGRESSED" } else { "ok" },
            );
        }
        let regressions = comps.iter().filter(|c| c.regressed).count();
        println!(
            "== comparison: {} benchmark(s), {} regression(s) past +{:.1}% ==",
            comps.len(),
            regressions,
            cfg.threshold_pct
        );
        if regressions > 0 {
            return 1;
        }
    }
    0
}

// ---------------------------------------------------------------------------
// driver
// ---------------------------------------------------------------------------

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        b.report(name);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("-- group: {name} --");
        BenchmarkGroup { criterion: self, group: name.to_string() }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    group: String,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::new(self.criterion.sample_size);
        f(&mut b);
        b.report(&format!("{}/{}", self.group, id));
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::new(self.criterion.sample_size);
        f(&mut b, input);
        b.report(&format!("{}/{}", self.group, id));
        self
    }

    pub fn finish(self) {}
}

/// Declare a group of benchmark functions (both criterion forms supported).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generate `main` running the given benchmark groups, then applying
/// `--save-baseline` / `--compare` / `--threshold` (cargo's own flags and
/// filters are ignored). Exits non-zero on regression past the threshold.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let cfg = $crate::parse_args(std::env::args().skip(1));
            $( $group(); )+
            std::process::exit($crate::finish(&cfg));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The results registry is process-global; tests that touch it hold
    /// this lock so parallel test threads don't steal each other's entries.
    static REGISTRY_GUARD: Mutex<()> = Mutex::new(());

    fn guard() -> std::sync::MutexGuard<'static, ()> {
        REGISTRY_GUARD.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn bench_function_runs_closure_and_records_result() {
        let _g = guard();
        take_results();
        let mut c = Criterion::default().sample_size(3);
        let mut runs = 0u64;
        c.bench_function("counter", |b| b.iter(|| runs += 1));
        assert!(runs > 3, "closure should run warmup + samples, ran {runs}");
        let results = take_results();
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].name, "counter");
        assert!(results[0].mean_ns > 0.0);
        assert!(results[0].samples >= 1);
    }

    #[test]
    fn nearest_rank_percentiles() {
        let sorted: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile(&sorted, 0.50), 50.0);
        assert_eq!(percentile(&sorted, 0.95), 95.0);
        assert_eq!(percentile(&sorted, 1.0), 100.0);
        // tiny sample lists degrade gracefully
        assert_eq!(percentile(&[7.5], 0.50), 7.5);
        assert_eq!(percentile(&[7.5], 0.95), 7.5);
        assert_eq!(percentile(&[1.0, 2.0], 0.95), 2.0);
        assert_eq!(percentile(&[1.0, 2.0], 0.10), 1.0);
    }

    #[test]
    fn group_and_ids() {
        let _g = guard();
        take_results();
        let mut c = Criterion::default().sample_size(2);
        let mut group = c.benchmark_group("g");
        group.bench_with_input(BenchmarkId::from_parameter("p"), &7u32, |b, &x| {
            b.iter(|| black_box(x) * 2)
        });
        group.bench_function("plain", |b| b.iter(|| black_box(1u8)));
        group.finish();
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        let names: Vec<String> = take_results().into_iter().map(|r| r.name).collect();
        assert_eq!(names, ["g/p", "g/plain"]);
    }

    #[test]
    fn iqr_rejects_the_minority_mode_of_a_bimodal_sample() {
        // 16 fast samples around 1.0 plus 3 scheduler-blip samples at ~100:
        // the fences sit near the fast mode, so the blips are rejected.
        let mut samples: Vec<f64> = (0..16).map(|i| 1.0 + 0.01 * i as f64).collect();
        samples.extend([100.0, 105.0, 110.0]);
        let (kept, rejected) = reject_outliers(&samples);
        assert_eq!(rejected, 3, "the slow mode must be rejected: kept {kept:?}");
        assert_eq!(kept.len(), 16);
        assert!(kept.iter().all(|&v| v < 2.0));
        // a unimodal sample passes through untouched
        let calm: Vec<f64> = (0..16).map(|i| 5.0 + 0.01 * i as f64).collect();
        let (kept, rejected) = reject_outliers(&calm);
        assert_eq!((kept.len(), rejected), (16, 0));
        // under 4 samples there are no quartiles to anchor fences
        let (kept, rejected) = reject_outliers(&[1.0, 999.0]);
        assert_eq!((kept.len(), rejected), (2, 0));
    }

    #[test]
    fn baseline_roundtrips_through_json() {
        let results = vec![
            BenchResult {
                name: "routing/f32".into(),
                mean_ns: 1234.5,
                p50_ns: 1200.0,
                samples: 20,
                outliers_rejected: 1,
            },
            BenchResult {
                name: "routing/i8".into(),
                mean_ns: 600.25,
                p50_ns: 580.5,
                samples: 20,
                outliers_rejected: 0,
            },
        ];
        let json = baseline_json(&results);
        let parsed = parse_baseline(&json).unwrap();
        assert_eq!(
            parsed,
            vec![("routing/f32".to_string(), 1200.0), ("routing/i8".to_string(), 580.5)]
        );
        assert!(parse_baseline("{}").is_err());
        assert!(parse_baseline("not json").is_err());
    }

    #[test]
    fn compare_delta_math_and_threshold() {
        let current = vec![
            BenchResult {
                name: "a".into(),
                mean_ns: 0.0,
                p50_ns: 120.0,
                samples: 20,
                outliers_rejected: 0,
            },
            BenchResult {
                name: "b".into(),
                mean_ns: 0.0,
                p50_ns: 90.0,
                samples: 20,
                outliers_rejected: 0,
            },
            BenchResult {
                name: "new-bench".into(),
                mean_ns: 0.0,
                p50_ns: 50.0,
                samples: 20,
                outliers_rejected: 0,
            },
        ];
        let baseline = vec![
            ("a".to_string(), 100.0),
            ("b".to_string(), 100.0),
            ("removed-bench".to_string(), 10.0),
        ];
        let comps = compare_results(&current, &baseline, 10.0);
        // intersection only: new and removed benches are not regressions
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0].name, "a");
        assert!((comps[0].delta_pct - 20.0).abs() < 1e-9);
        assert!(comps[0].regressed, "+20% past a 10% threshold");
        assert_eq!(comps[1].name, "b");
        assert!((comps[1].delta_pct + 10.0).abs() < 1e-9);
        assert!(!comps[1].regressed, "-10% is an improvement");
        // exactly at threshold is not a regression (strictly past it is)
        let at = compare_results(&current, &[("a".to_string(), 100.0)], 20.0);
        assert!(!at[0].regressed);
    }

    #[test]
    fn compare_exit_code_via_finish() {
        let _g = guard();
        take_results();
        let dir = std::env::temp_dir().join("criterion-stub-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("exitcode.json");
        let base = vec![BenchResult {
            name: "x".into(),
            mean_ns: 100.0,
            p50_ns: 100.0,
            samples: 4,
            outliers_rejected: 0,
        }];
        std::fs::write(&path, baseline_json(&base)).unwrap();

        // identical run → clean exit
        record(base[0].clone());
        let cfg = RunConfig {
            compare: Some(path.to_string_lossy().into_owned()),
            ..RunConfig::default()
        };
        assert_eq!(finish(&cfg), 0);

        // 3x slower → regression exit code
        record(BenchResult { p50_ns: 300.0, ..base[0].clone() });
        assert_eq!(finish(&cfg), 1);

        // unreadable baseline → harness error exit code
        let cfg_bad =
            RunConfig { compare: Some("/nonexistent/np.json".into()), ..RunConfig::default() };
        assert_eq!(finish(&cfg_bad), 2);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn save_baseline_writes_file_and_creates_dirs() {
        let _g = guard();
        take_results();
        let dir = std::env::temp_dir().join("criterion-stub-test").join("nested");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("saved.json");
        record(BenchResult {
            name: "y".into(),
            mean_ns: 5.0,
            p50_ns: 5.0,
            samples: 4,
            outliers_rejected: 0,
        });
        let cfg = RunConfig {
            save_baseline: Some(path.to_string_lossy().into_owned()),
            ..RunConfig::default()
        };
        assert_eq!(finish(&cfg), 0);
        let parsed = parse_baseline(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(parsed, vec![("y".to_string(), 5.0)]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn arg_parsing_tolerates_cargo_noise() {
        let args = |v: &[&str]| parse_args(v.iter().map(|s| s.to_string()));
        assert_eq!(args(&[]), RunConfig::default());
        // cargo's harness flags and filters pass through silently
        assert_eq!(args(&["--bench", "routing_filter"]), RunConfig::default());
        let cfg = args(&["--bench", "--compare", "b.json", "--threshold", "5"]);
        assert_eq!(cfg.compare.as_deref(), Some("b.json"));
        assert_eq!(cfg.threshold_pct, 5.0);
        let cfg = args(&["--save-baseline=out.json", "--threshold=2.5"]);
        assert_eq!(cfg.save_baseline.as_deref(), Some("out.json"));
        assert_eq!(cfg.threshold_pct, 2.5);
        // a malformed threshold keeps the default rather than panicking
        assert_eq!(args(&["--threshold", "fast"]).threshold_pct, 10.0);
    }
}
