//! Offline vendored subset of the `serde_json` API.
//!
//! Provides `to_writer` / `to_vec` / `to_string` / `from_reader` /
//! `from_slice` / `from_str` and an [`Error`] type, over the vendored
//! `serde` crate's [`Value`] data model.
//!
//! Numbers use Rust's shortest round-trip float formatting, so `f64` (and
//! therefore `f32`, which widens losslessly) survives a text round trip
//! bit-exactly. Non-finite floats serialize as `null` (JSON has no NaN) and
//! deserialize back as NaN.
//!
//! ```
//! let xs = vec![1u32, 2, 3];
//! let text = serde_json::to_string(&xs).unwrap();
//! assert_eq!(text, "[1,2,3]");
//! let back: Vec<u32> = serde_json::from_str(&text).unwrap();
//! assert_eq!(back, xs);
//! ```

use std::fmt;
use std::io::{Read, Write};

use serde::{DeError, Deserialize, Serialize, Value};

/// Serialization / deserialization failure.
#[derive(Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error::new(e.to_string())
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::new(format!("io: {e}"))
    }
}

// ---------------------------------------------------------------------------
// serialization
// ---------------------------------------------------------------------------

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // Rust's Display prints the shortest digits that round-trip.
                out.push_str(&f.to_string());
            } else {
                out.push_str("null");
            }
        }
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(out, k);
                out.push(':');
                write_value(out, val);
            }
            out.push('}');
        }
    }
}

/// Render a value as a JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &Serialize::serialize(value));
    Ok(out)
}

/// Render a value as JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Render a value as JSON into a writer.
pub fn to_writer<W: Write, T: Serialize + ?Sized>(mut writer: W, value: &T) -> Result<(), Error> {
    let s = to_string(value)?;
    writer.write_all(s.as_bytes())?;
    Ok(())
}

// ---------------------------------------------------------------------------
// deserialization
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Parser { bytes, pos: 0 }
    }

    fn err(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.keyword("null", Value::Null),
            Some(b't') => self.keyword("true", Value::Bool(true)),
            Some(b'f') => self.keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            Some(b) => Err(self.err(&format!("unexpected byte `{}`", b as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn keyword(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not emitted by this crate's
                            // writer; reject rather than mis-decode.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("invalid \\u code point"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // consume one UTF-8 char
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::Int(n));
            }
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::UInt(n));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.err(&format!("invalid number `{text}`")))
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

/// Parse a value from JSON bytes.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let mut parser = Parser::new(bytes);
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != bytes.len() {
        return Err(parser.err("trailing characters"));
    }
    Ok(T::deserialize(&value)?)
}

/// Parse a value from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    from_slice(s.as_bytes())
}

/// Parse a value from a reader producing JSON text.
pub fn from_reader<R: Read, T: Deserialize>(mut reader: R) -> Result<T, Error> {
    let mut buf = Vec::new();
    reader.read_to_end(&mut buf)?;
    from_slice(&buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        assert_eq!(from_str::<i64>(&to_string(&-42i64).unwrap()).unwrap(), -42);
        assert_eq!(from_str::<u64>(&to_string(&u64::MAX).unwrap()).unwrap(), u64::MAX);
        assert!(from_str::<bool>("true").unwrap());
        assert_eq!(from_str::<String>("\"a\\nb\\\"c\\u00e9\"").unwrap(), "a\nb\"cé");
    }

    #[test]
    fn floats_roundtrip_bit_exactly() {
        for x in [0.1f64, 1.0, -2.5e-300, std::f64::consts::PI, f64::MAX, 5e-324] {
            let s = to_string(&x).unwrap();
            assert_eq!(from_str::<f64>(&s).unwrap().to_bits(), x.to_bits(), "{s}");
        }
        for bits in [0x3f80_0001u32, 0xc249_9326, 0x0000_0001] {
            let x = f32::from_bits(bits);
            let s = to_string(&x).unwrap();
            assert_eq!(from_str::<f32>(&s).unwrap().to_bits(), bits, "{s}");
        }
    }

    #[test]
    fn nan_becomes_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert!(from_str::<f64>("null").unwrap().is_nan());
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![vec![1u32, 2], vec![3]];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[[1,2],[3]]");
        assert_eq!(from_str::<Vec<Vec<u32>>>(&s).unwrap(), v);

        let mut m = std::collections::HashMap::new();
        m.insert(7u32, "seven".to_string());
        let s = to_string(&m).unwrap();
        assert_eq!(from_str::<std::collections::HashMap<u32, String>>(&s).unwrap(), m);
    }

    #[test]
    fn whitespace_and_errors() {
        assert_eq!(from_str::<Vec<u8>>(" [ 1 , 2 ] ").unwrap(), vec![1, 2]);
        assert!(from_str::<Vec<u8>>("[1, 2").is_err());
        assert!(from_str::<u8>("[1]").is_err());
        assert!(from_str::<Vec<u8>>("[1] junk").is_err());
    }

    #[test]
    fn writer_reader_roundtrip() {
        let mut buf = Vec::new();
        to_writer(&mut buf, &vec![1.5f32, -0.25]).unwrap();
        let back: Vec<f32> = from_reader(buf.as_slice()).unwrap();
        assert_eq!(back, vec![1.5, -0.25]);
    }
}
