//! Offline vendored subset of the `proptest` API.
//!
//! The build environment has no crates.io access, so this crate provides
//! the surface the workspace's property tests use: the [`proptest!`] macro
//! (with `#![proptest_config(...)]`), [`ProptestConfig::with_cases`],
//! integer-range strategies (`lo..hi`, `lo..=hi`), and
//! [`prop_assert!`] / [`prop_assert_eq!`].
//!
//! Unlike real proptest there is no shrinking: a failing case reports the
//! sampled input and panics. Sampling is deterministic (SplitMix64 from a
//! fixed seed), so failures reproduce across runs.
//!
//! ```
//! use proptest::prelude::*;
//!
//! proptest! {
//!     #![proptest_config(ProptestConfig::with_cases(16))]
//!     // inside a #[cfg(test)] module you would add #[test] here
//!     fn doubling_halves_back(x in 0u32..1000) {
//!         prop_assert_eq!((x * 2) / 2, x);
//!     }
//! }
//! # doubling_halves_back();
//! ```
//!
//! (Each test takes one `binding in strategy` argument — derive several
//! values from one sampled seed when a case needs more dimensions.)

use std::fmt;
use std::ops::{Range, RangeInclusive};

pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
        TestCaseError,
    };
}

/// Test-runner configuration (subset: case count only).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A rejected/failed test case (carries the failure message).
#[derive(Debug)]
pub struct TestCaseError {
    msg: String,
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError { msg: msg.into() }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

/// Deterministic sample generator state (SplitMix64).
pub fn next_state(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Value-producing strategy (subset: uniform integer ranges).
pub trait Strategy {
    type Value: fmt::Debug;
    fn sample(&self, state: &mut u64) -> Self::Value;
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, state: &mut u64) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add((next_state(state) % span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, state: &mut u64) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    return next_state(state) as $t;
                }
                lo.wrapping_add((next_state(state) % span) as $t)
            }
        }
    )*};
}

int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Property-test entry point; each body runs `cases` times over samples of
/// its strategy. No shrinking: failures report the exact sampled input.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($arg:ident in $strat:expr) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            // Fixed seed: deterministic, but distinct per test name.
            let mut __state: u64 = 0xDBC0_0153u64 ^ {
                let mut h = 0xcbf2_9ce4_8422_2325u64;
                for b in stringify!($name).bytes() {
                    h ^= b as u64;
                    h = h.wrapping_mul(0x1000_0000_01b3);
                }
                h
            };
            for __case in 0..__cfg.cases {
                let $arg = $crate::Strategy::sample(&($strat), &mut __state);
                let __input = format!("{:?}", $arg);
                let __result: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body Ok(()) })();
                if let Err(e) = __result {
                    panic!(
                        "proptest {} failed at case {}/{} with input {}: {}",
                        stringify!($name), __case + 1, __cfg.cases, __input, e
                    );
                }
            }
        }
    )*};
}

/// Assert inside a `proptest!` body; failure aborts only the current case
/// with a message (no shrinking in this vendored subset).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err($crate::TestCaseError::fail(
                format!("assertion failed: {:?} != {:?}", l, r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err($crate::TestCaseError::fail(
                format!("assertion failed: {:?} != {:?}: {}", l, r, format!($($fmt)+)),
            ));
        }
    }};
}

/// Inequality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return Err($crate::TestCaseError::fail(
                format!("assertion failed: {:?} == {:?}", l, r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return Err($crate::TestCaseError::fail(
                format!("assertion failed: {:?} == {:?}: {}", l, r, format!($($fmt)+)),
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Samples stay inside the declared range.
        #[test]
        fn in_range(x in 10u64..20) {
            prop_assert!((10..20).contains(&x), "{x} out of range");
        }

        #[test]
        fn inclusive_range(x in 0i32..=3) {
            prop_assert!((0..=3).contains(&x));
            prop_assert_eq!(x - x, 0);
            prop_assert_ne!(x, x + 1, "off by one from {}", x);
        }
    }

    #[test]
    fn determinism() {
        let mut a = 1u64;
        let mut b = 1u64;
        for _ in 0..10 {
            assert_eq!((5u64..500).sample(&mut a), (5u64..500).sample(&mut b));
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failure_reports_input() {
        crate::proptest! {
            #![proptest_config(crate::ProptestConfig::with_cases(4))]
            #[allow(unused)]
            fn always_fails(x in 0u8..4) {
                crate::prop_assert!(x > 100, "sampled {}", x);
            }
        }
        always_fails();
    }
}
