//! Offline vendored subset of the `serde` API.
//!
//! The build environment has no crates.io access, so this crate provides the
//! serialization surface the workspace needs: [`Serialize`] / [`Deserialize`]
//! traits (value-model based, not visitor based), derive macros re-exported
//! from the companion `serde_derive` proc-macro crate (supporting
//! `#[serde(skip)]` and `#[serde(default)]`), and impls for the std types
//! used across the DBCopilot crates.
//!
//! The data model is a simple owned [`Value`] tree; `serde_json` (also
//! vendored) renders/parses it as JSON text. Maps serialize as arrays of
//! `[key, value]` pairs so non-string keys (e.g. `HashMap<u32, _>` in the
//! trie) round-trip losslessly.
//!
//! ```
//! use serde::{Deserialize, Serialize};
//!
//! #[derive(Serialize, Deserialize, Debug, PartialEq)]
//! struct Point {
//!     x: i64,
//!     y: i64,
//! }
//!
//! let p = Point { x: 3, y: -4 };
//! let v = p.serialize();
//! assert_eq!(Point::deserialize(&v).unwrap(), p);
//! ```

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;
use std::hash::Hash;

/// The self-describing data model every `Serialize` impl produces and every
/// `Deserialize` impl consumes.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    UInt(u64),
    Float(f64),
    String(String),
    Array(Vec<Value>),
    /// Ordered key–value pairs (insertion order preserved).
    Object(Vec<(String, Value)>),
}

impl Value {
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Object field lookup (linear scan; objects here are small).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) | Value::Float(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Deserialization error: a message describing the mismatch.
#[derive(Debug, Clone)]
pub struct DeError {
    msg: String,
}

impl DeError {
    pub fn msg(m: impl Into<String>) -> Self {
        DeError { msg: m.into() }
    }

    fn expected(what: &str, got: &Value) -> Self {
        DeError::msg(format!("expected {what}, found {}", got.kind()))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for DeError {}

/// Types that can render themselves into the [`Value`] data model.
pub trait Serialize {
    fn serialize(&self) -> Value;
}

/// Types reconstructible from the [`Value`] data model.
pub trait Deserialize: Sized {
    fn deserialize(v: &Value) -> Result<Self, DeError>;
}

// A `Value` is already the data model: identity impls let callers hand a
// hand-built tree straight to `serde_json` (dynamic documents with no
// dedicated struct, e.g. benchmark baselines).
impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

// ---------------------------------------------------------------------------
// helpers used by derive-generated code
// ---------------------------------------------------------------------------

/// Required field: error if `v` is not an object or the key is absent.
pub fn de_field<T: Deserialize>(v: &Value, key: &str) -> Result<T, DeError> {
    match v {
        Value::Object(_) => match v.get(key) {
            Some(field) => {
                T::deserialize(field).map_err(|e| DeError::msg(format!("field `{key}`: {e}")))
            }
            None => Err(DeError::msg(format!("missing field `{key}`"))),
        },
        other => Err(DeError::expected("object", other)),
    }
}

/// `#[serde(default)]` field: absent key falls back to `Default::default()`.
pub fn de_field_default<T: Deserialize + Default>(v: &Value, key: &str) -> Result<T, DeError> {
    match v {
        Value::Object(_) => match v.get(key) {
            Some(field) => {
                T::deserialize(field).map_err(|e| DeError::msg(format!("field `{key}`: {e}")))
            }
            None => Ok(T::default()),
        },
        other => Err(DeError::expected("object", other)),
    }
}

// ---------------------------------------------------------------------------
// primitive impls
// ---------------------------------------------------------------------------

macro_rules! ser_de_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value { Value::Int(*self as i64) }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Int(n) => Ok(*n as $t),
                    Value::UInt(n) => Ok(*n as $t),
                    Value::Float(f) => Ok(*f as $t),
                    other => Err(DeError::expected("integer", other)),
                }
            }
        }
    )*};
}

macro_rules! ser_de_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value { Value::UInt(*self as u64) }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Int(n) => Ok(*n as $t),
                    Value::UInt(n) => Ok(*n as $t),
                    Value::Float(f) => Ok(*f as $t),
                    other => Err(DeError::expected("integer", other)),
                }
            }
        }
    )*};
}

ser_de_signed!(i8, i16, i32, i64, isize);
ser_de_unsigned!(u8, u16, u32, u64, usize);

macro_rules! ser_de_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value { Value::Float(*self as f64) }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Float(f) => Ok(*f as $t),
                    Value::Int(n) => Ok(*n as $t),
                    Value::UInt(n) => Ok(*n as $t),
                    Value::Null => Ok(<$t>::NAN), // non-finite floats render as null
                    other => Err(DeError::expected("number", other)),
                }
            }
        }
    )*};
}

ser_de_float!(f32, f64);

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", other)),
        }
    }
}

impl Serialize for char {
    fn serialize(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::String(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(DeError::expected("single-char string", other)),
        }
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", other)),
        }
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(x) => x.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::deserialize(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::deserialize).collect(),
            other => Err(DeError::expected("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize + std::fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        let items: Vec<T> = Deserialize::deserialize(v)?;
        let n = items.len();
        items
            .try_into()
            .map_err(|_| DeError::msg(format!("expected array of length {N}, found {n}")))
    }
}

impl Serialize for () {
    fn serialize(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(()),
            other => Err(DeError::expected("null", other)),
        }
    }
}

macro_rules! ser_de_tuple {
    ($(($($name:ident : $idx:tt),+) of $len:expr;)*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize(&self) -> Value {
                Value::Array(vec![$(self.$idx.serialize()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Array(items) if items.len() == $len => {
                        Ok(($($name::deserialize(&items[$idx])?,)+))
                    }
                    other => Err(DeError::expected(concat!("array of length ", $len), other)),
                }
            }
        }
    )*};
}

ser_de_tuple! {
    (A: 0) of 1;
    (A: 0, B: 1) of 2;
    (A: 0, B: 1, C: 2) of 3;
    (A: 0, B: 1, C: 2, D: 3) of 4;
}

// Maps serialize as arrays of [key, value] pairs: self-consistent, order of
// hash maps is not guaranteed, and non-string keys need no special casing.
macro_rules! ser_de_map {
    ($($map:ident, $kbound:path;)*) => {$(
        impl<K: Serialize, V: Serialize> Serialize for $map<K, V> {
            fn serialize(&self) -> Value {
                Value::Array(
                    self.iter()
                        .map(|(k, v)| Value::Array(vec![k.serialize(), v.serialize()]))
                        .collect(),
                )
            }
        }
        impl<K: Deserialize + $kbound + Eq, V: Deserialize> Deserialize for $map<K, V> {
            fn deserialize(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Array(items) => items
                        .iter()
                        .map(|pair| match pair {
                            Value::Array(kv) if kv.len() == 2 => {
                                Ok((K::deserialize(&kv[0])?, V::deserialize(&kv[1])?))
                            }
                            other => Err(DeError::expected("[key, value] pair", other)),
                        })
                        .collect(),
                    other => Err(DeError::expected("array of pairs", other)),
                }
            }
        }
    )*};
}

ser_de_map! {
    HashMap, Hash;
    BTreeMap, Ord;
}

macro_rules! ser_de_set {
    ($($set:ident, $bound:path;)*) => {$(
        impl<T: Serialize> Serialize for $set<T> {
            fn serialize(&self) -> Value {
                Value::Array(self.iter().map(Serialize::serialize).collect())
            }
        }
        impl<T: Deserialize + $bound + Eq> Deserialize for $set<T> {
            fn deserialize(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Array(items) => items.iter().map(T::deserialize).collect(),
                    other => Err(DeError::expected("array", other)),
                }
            }
        }
    )*};
}

ser_de_set! {
    HashSet, Hash;
    BTreeSet, Ord;
}

macro_rules! ser_de_smart_ptr {
    ($($ptr:ident),*) => {$(
        impl<T: Serialize> Serialize for $ptr<T> {
            fn serialize(&self) -> Value {
                (**self).serialize()
            }
        }
        impl<T: Deserialize> Deserialize for $ptr<T> {
            fn deserialize(v: &Value) -> Result<Self, DeError> {
                Ok($ptr::new(T::deserialize(v)?))
            }
        }
    )*};
}

use std::rc::Rc;
use std::sync::Arc;

ser_de_smart_ptr!(Box, Rc, Arc);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u32::deserialize(&42u32.serialize()).unwrap(), 42);
        assert_eq!(i64::deserialize(&(-7i64).serialize()).unwrap(), -7);
        assert_eq!(f32::deserialize(&1.5f32.serialize()).unwrap(), 1.5);
        assert_eq!(String::deserialize(&"hi".to_string().serialize()).unwrap(), "hi");
        assert!(bool::deserialize(&true.serialize()).unwrap());
    }

    #[test]
    fn f32_exactness_through_f64() {
        // f32 -> f64 widening is lossless, so every f32 round-trips exactly.
        for bits in [0x3f80_0001u32, 0x0000_0001, 0x7f7f_ffff, 0xc249_9326] {
            let x = f32::from_bits(bits);
            assert_eq!(f32::deserialize(&x.serialize()).unwrap().to_bits(), bits);
        }
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::deserialize(&v.serialize()).unwrap(), v);

        let mut m = HashMap::new();
        m.insert(3u32, "x".to_string());
        m.insert(9, "y".to_string());
        assert_eq!(HashMap::<u32, String>::deserialize(&m.serialize()).unwrap(), m);

        let o: Option<u8> = None;
        assert_eq!(Option::<u8>::deserialize(&o.serialize()).unwrap(), None);
        let t = (1u8, "a".to_string());
        assert_eq!(<(u8, String)>::deserialize(&t.serialize()).unwrap(), t);
    }

    #[test]
    fn missing_field_errors() {
        let v = Value::Object(vec![("a".into(), Value::Int(1))]);
        assert!(de_field::<i64>(&v, "a").is_ok());
        assert!(de_field::<i64>(&v, "b").is_err());
        assert_eq!(de_field_default::<i64>(&v, "b").unwrap(), 0);
    }
}
