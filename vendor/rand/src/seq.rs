//! Slice sampling helpers (subset of rand 0.8's `seq::SliceRandom`).

use crate::{Rng, RngCore};

/// Extension trait on slices: uniform choice and Fisher–Yates shuffle.
pub trait SliceRandom {
    type Item;

    /// A uniformly random element, or `None` on an empty slice.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

    /// In-place Fisher–Yates shuffle.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            let idx = (&mut *rng).gen_range(0..self.len());
            Some(&self[idx])
        }
    }

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = (&mut *rng).gen_range(0..=i);
            self.swap(i, j);
        }
    }
}
