//! Offline vendored subset of the `rand` 0.8 API.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the exact surface the DBCopilot crates use: [`rngs::SmallRng`],
//! [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] / [`Rng::gen_bool`],
//! and [`seq::SliceRandom`] (`choose` / `shuffle`).
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — the same
//! construction rand 0.8's `SmallRng` uses on 64-bit targets — so the
//! statistical quality is adequate for the seeded, reproducible workloads
//! here. Exact streams differ from the real crate; all seeds in this
//! repository were calibrated against this implementation.
//!
//! ```
//! use rand::rngs::SmallRng;
//! use rand::{Rng, SeedableRng};
//!
//! let mut rng = SmallRng::seed_from_u64(7);
//! let a = rng.gen_range(0u32..100);
//! assert!(a < 100);
//! // deterministic: the same seed replays the same stream
//! assert_eq!(SmallRng::seed_from_u64(7).gen_range(0u32..100), a);
//! ```

pub mod rngs;
pub mod seq;

/// Core RNG interface: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction (subset: `seed_from_u64` only).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling helpers, in the style of rand 0.8's `Rng` extension trait.
pub trait Rng: RngCore {
    /// Uniform sample from a half-open or inclusive range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        next_f64(self) < p
    }
}

impl<R: RngCore> Rng for R {}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

fn next_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // 53 random bits into [0, 1).
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

fn next_f32<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
    (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
}

/// Types with a uniform sampler. The single blanket [`SampleRange`] impl
/// below couples the range's element type to the sampled type, which is what
/// lets inference flow outward from expression context (as in real rand:
/// `k + rng.gen_range(1..3)` with `k: i64` infers `Range<i64>`).
pub trait SampleUniform: Copy + PartialOrd {
    fn sample_range<R: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self;
}

/// A range that can produce a uniform sample of `T`.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_range(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty inclusive range");
        T::sample_range(lo, hi, true, rng)
    }
}

macro_rules! int_sample_uniform {
    ($($t:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(lo: $t, hi: $t, inclusive: bool, rng: &mut R) -> $t {
                let span = (hi as u64)
                    .wrapping_sub(lo as u64)
                    .wrapping_add(inclusive as u64);
                if span == 0 {
                    // inclusive full-domain range: every draw is valid
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_uniform {
    ($($t:ty => $unit:ident),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(lo: $t, hi: $t, _inclusive: bool, rng: &mut R) -> $t {
                lo + (hi - lo) * $unit(rng)
            }
        }
    )*};
}

float_sample_uniform!(f32 => next_f32, f64 => next_f64);

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};
    use crate::seq::SliceRandom;

    #[test]
    fn determinism() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(1..=4);
            assert!((1..=4).contains(&y));
            let f = rng.gen_range(0.0f32..1.0);
            assert!((0.0..1.0).contains(&f));
            let g = rng.gen_range(-2.0f64..=2.0);
            assert!((-2.0..=2.0).contains(&g));
        }
    }

    #[test]
    fn gen_bool_extremes_and_rate() {
        let mut rng = SmallRng::seed_from_u64(9);
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits}");
    }

    #[test]
    fn choose_and_shuffle() {
        let mut rng = SmallRng::seed_from_u64(3);
        let items = [1, 2, 3, 4, 5];
        for _ in 0..50 {
            assert!(items.contains(items.choose(&mut rng).unwrap()));
        }
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let mut v: Vec<u32> = (0..64).collect();
        let orig = v.clone();
        v.shuffle(&mut rng);
        assert_ne!(v, orig, "64-element shuffle left slice identical");
        let mut sorted = v.clone();
        sorted.sort();
        assert_eq!(sorted, orig);
    }
}
