//! # DBCopilot — natural language querying over massive databases
//!
//! A complete Rust reproduction of *DBCopilot: Natural Language Querying
//! over Massive Databases via Schema Routing* (EDBT 2025). The crate
//! re-exports the full workspace and provides [`DbCopilot`], the end-to-end
//! pipeline of the paper's Figure 1:
//!
//! 1. **Schema routing** — a compact generative-retrieval model
//!    ([`dbcopilot_core::DbcRouter`]) navigates a question to its target
//!    database and tables under graph-constrained diverse beam search;
//! 2. **SQL generation** — an LLM (here the offline
//!    [`dbcopilot_nl2sql::CopilotLM`]) receives the routed schema in a
//!    schema-aware prompt and emits SQL, which executes on the in-memory
//!    engine ([`dbcopilot_sqlengine`]).
//!
//! The pipeline is *staged and fallible*: [`DbCopilot::ask`] walks the
//! router's top-k candidate schemata, re-prompts the LLM with the engine
//! error when generated SQL fails (execution-feedback repair), and
//! returns `Result<Answer, AskError>` — a typed error naming the stage
//! that failed instead of a silent `None`. [`DbCopilot::ask_with`]
//! additionally returns the full [`AskReport`] trace: scored candidates,
//! every SQL attempt with its outcome, per-stage timings.
//!
//! ```no_run
//! use dbcopilot::{AskOptions, DbCopilot, PipelineConfig};
//! use dbcopilot_synth::{build_spider_like, CorpusSizes};
//!
//! let corpus = build_spider_like(&CorpusSizes { num_databases: 20, train_n: 500, test_n: 50 }, 7);
//! let copilot = DbCopilot::fit(&corpus, PipelineConfig::default());
//! match copilot.ask("How many singers are there?") {
//!     Ok(answer) => println!("{} -> {} rows", answer.sql, answer.result.rows.len()),
//!     Err(e) => eprintln!("failed at the {} stage: {e}", e.stage()),
//! }
//! let report = copilot.ask_with("How many singers are there?", &AskOptions::new().top_k(5));
//! ```

pub use dbcopilot_core as core;
pub use dbcopilot_eval as eval;
pub use dbcopilot_graph as graph;
pub use dbcopilot_http as http;
pub use dbcopilot_nl2sql as nl2sql;
pub use dbcopilot_nn as nn;
pub use dbcopilot_retrieval as retrieval;
pub use dbcopilot_runtime as runtime;
pub use dbcopilot_serve as serve;
pub use dbcopilot_sqlengine as sqlengine;
pub use dbcopilot_synth as synth;

use std::time::{Duration, Instant};

use dbcopilot_core::{DbcRouter, RouterConfig, SerializationMode};
use dbcopilot_graph::{QuerySchema, SchemaGraph};
use dbcopilot_nl2sql::{basic_prompt, repair_prompt, CopilotLM, LlmConfig, PromptSchema};
use dbcopilot_sqlengine::{execute_prepared, EngineError, PreparedStore};
use dbcopilot_synth::{questioner_pairs, Corpus, Questioner, QuestionerConfig};

pub use dbcopilot_serve::{
    Answer, AskError, AskOptions, AskReport, AttemptOutcome, ExecutionError, GenerationError,
    PromptError, QueryPipeline, RoutingError, ScoredCandidate, SqlAttempt, StageTimings,
    TraceLevel,
};

/// End-to-end pipeline configuration. Builder-style so adding a knob is
/// not a breaking change:
///
/// ```
/// use dbcopilot::PipelineConfig;
/// let cfg = PipelineConfig::new().synth_pairs(1000).seed(7);
/// assert_eq!(cfg.synth_pairs, 1000);
/// ```
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct PipelineConfig {
    pub router: RouterConfig,
    pub llm: LlmConfig,
    /// Synthetic training pairs for the router.
    pub synth_pairs: usize,
    pub seed: u64,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            router: RouterConfig::default(),
            llm: LlmConfig::default(),
            synth_pairs: 4000,
            seed: 0xdbc,
        }
    }
}

impl PipelineConfig {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn router(mut self, router: RouterConfig) -> Self {
        self.router = router;
        self
    }

    pub fn llm(mut self, llm: LlmConfig) -> Self {
        self.llm = llm;
        self
    }

    pub fn synth_pairs(mut self, n: usize) -> Self {
        self.synth_pairs = n;
        self
    }

    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// The LLM-copilot collaboration pipeline (paper Figure 1).
pub struct DbCopilot {
    pub router: DbcRouter,
    pub llm: CopilotLM,
    corpus_collection: dbcopilot_sqlengine::Collection,
    /// Databases with interned cells, prepared lazily per database on
    /// first execution and reused across every ask/repair round after.
    corpus_store: PreparedStore,
}

impl DbCopilot {
    /// Train the full pipeline over a corpus: schema graph construction,
    /// questioner training, training-data synthesis, and router fitting.
    pub fn fit(corpus: &Corpus, cfg: PipelineConfig) -> Self {
        let mut graph = SchemaGraph::build(&corpus.collection);
        dbcopilot_graph::augment_graph_with_joinable(
            &mut graph,
            &corpus.store,
            dbcopilot_graph::joinable::DEFAULT_JACCARD_THRESHOLD,
        );
        let pairs = questioner_pairs(corpus);
        let questioner = Questioner::train(&pairs, &QuestionerConfig::default());
        let examples = dbcopilot_core::synthesize_training_data(
            &graph,
            &corpus.meta,
            &questioner,
            cfg.synth_pairs,
            cfg.seed,
        );
        let (router, _) = DbcRouter::fit(graph, &examples, cfg.router, SerializationMode::Dfs);
        DbCopilot {
            router,
            llm: CopilotLM::new(cfg.llm),
            corpus_collection: corpus.collection.clone(),
            corpus_store: PreparedStore::new(corpus.store.clone()),
        }
    }

    /// Assemble a pipeline from an already-trained router (e.g. one loaded
    /// via [`dbcopilot_core::load_router`], or a shared test fixture) and
    /// the corpus it should answer over.
    pub fn from_parts(
        router: DbcRouter,
        llm_cfg: LlmConfig,
        collection: dbcopilot_sqlengine::Collection,
        store: dbcopilot_sqlengine::Store,
    ) -> Self {
        DbCopilot {
            router,
            llm: CopilotLM::new(llm_cfg),
            corpus_collection: collection,
            corpus_store: PreparedStore::new(store),
        }
    }

    /// Route a question to its best schema.
    pub fn route(&self, question: &str) -> Option<QuerySchema> {
        self.router.best_schema(question)
    }

    /// Full pipeline with default options (top-3 candidate fallback, one
    /// execution-feedback repair): route, prompt, generate SQL, execute.
    ///
    /// `Ok` means the question was answered end to end — the returned
    /// [`Answer`] holds the executed SQL and its result (plus any
    /// execution errors recovered from along the way). `Err` names the
    /// stage that exhausted its options.
    pub fn ask(&self, question: &str) -> Result<Answer, AskError> {
        self.ask_with(question, &AskOptions::default()).map(|r| r.answer)
    }

    /// Full pipeline with explicit [`AskOptions`], returning the complete
    /// [`AskReport`] trace (scored candidates, every SQL attempt with its
    /// outcome, per-stage timings).
    pub fn ask_with(&self, question: &str, opts: &AskOptions) -> Result<AskReport, AskError> {
        let start = Instant::now();
        let decoded = self.router.route_schemata(question);
        let route_time = start.elapsed();
        let candidates: Vec<ScoredCandidate> = decoded
            .into_iter()
            .take(opts.top_k.max(1))
            .map(|d| ScoredCandidate { schema: d.schema, logp: d.logp })
            .collect();
        if candidates.is_empty() {
            return Err(AskError::Routing(RoutingError { question: question.to_string() }));
        }
        self.ask_candidates_inner(question, candidates, opts, start, route_time)
    }

    /// The candidate-fallback loop over an explicit candidate list (what
    /// [`ask_with`](DbCopilot::ask_with) runs after routing). Public so the
    /// loop is testable — and steerable — with hand-picked candidates.
    pub fn ask_candidates(
        &self,
        question: &str,
        candidates: Vec<ScoredCandidate>,
        opts: &AskOptions,
    ) -> Result<AskReport, AskError> {
        let start = Instant::now();
        if candidates.is_empty() {
            return Err(AskError::Routing(RoutingError { question: question.to_string() }));
        }
        self.ask_candidates_inner(question, candidates, opts, start, Duration::ZERO)
    }

    fn ask_candidates_inner(
        &self,
        question: &str,
        candidates: Vec<ScoredCandidate>,
        opts: &AskOptions,
        start: Instant,
        route_time: Duration,
    ) -> Result<AskReport, AskError> {
        let mut attempts: Vec<SqlAttempt> = Vec::new();
        let mut exec_errors: Vec<EngineError> = Vec::new();
        let mut generate_time = Duration::ZERO;
        let mut execute_time = Duration::ZERO;
        let mut resolved_any = false;
        let mut generated_any = false;

        for (ci, cand) in candidates.iter().enumerate() {
            let prompt_schema = PromptSchema::resolve(&self.corpus_collection, &cand.schema);
            if prompt_schema.tables.is_empty() {
                continue; // candidate names no known tables
            }
            let Some(pdb) = self.corpus_store.prepared(&cand.schema.database) else {
                continue; // candidate database has no populated instance
            };
            resolved_any = true;

            // Initial attempt, then up to `repair_attempts` re-prompts fed
            // with the failed SQL and its engine error. Identifiers the
            // engine rejects accumulate out of `pruned` so an identifier
            // dropped on round 1 cannot sneak back on round 2.
            let mut feedback: Option<(String, EngineError)> = None;
            let mut pruned = prompt_schema.clone();
            for repair in 0..=opts.repair_attempts {
                let gen_start = Instant::now();
                let (prompt, out) = match &feedback {
                    None => {
                        let p = basic_prompt(&prompt_schema, question);
                        let o = self.llm.generate_sql(&p, question);
                        (p, o)
                    }
                    Some((failed_sql, err)) => {
                        let p = repair_prompt(&pruned, question, failed_sql, &err.to_string());
                        let o = self
                            .llm
                            .generate_sql_with_feedback(&p, question, failed_sql, err, repair);
                        (p, o)
                    }
                };
                generate_time += gen_start.elapsed();
                let prompt_text = (opts.trace == TraceLevel::Full).then(|| prompt.text.clone());

                let Some(sql) = out.sql else {
                    record(
                        opts,
                        &mut attempts,
                        SqlAttempt {
                            candidate: ci,
                            database: cand.schema.database.clone(),
                            repair,
                            prompt: prompt_text,
                            sql: None,
                            outcome: AttemptOutcome::NoSql,
                        },
                    );
                    break; // grounding failed: feedback cannot conjure missing tables
                };
                generated_any = true;

                let exec_start = Instant::now();
                let executed = execute_prepared(pdb, &sql);
                execute_time += exec_start.elapsed();
                match executed {
                    Ok(result) => {
                        record(
                            opts,
                            &mut attempts,
                            SqlAttempt {
                                candidate: ci,
                                database: cand.schema.database.clone(),
                                repair,
                                prompt: prompt_text,
                                sql: Some(sql.clone()),
                                outcome: AttemptOutcome::Success { rows: result.rows.len() },
                            },
                        );
                        let answer = Answer {
                            schema: cand.schema.clone(),
                            sql,
                            result,
                            recovered_errors: exec_errors,
                        };
                        // At TraceLevel::Off the success report carries no
                        // attempt rows (recovered errors stay on the
                        // answer); terminal failures keep theirs below.
                        if opts.trace == TraceLevel::Off {
                            attempts.clear();
                        }
                        return Ok(AskReport {
                            question: question.to_string(),
                            answer,
                            candidates,
                            chosen: ci,
                            attempts,
                            timings: StageTimings {
                                route: route_time,
                                generate: generate_time,
                                execute: execute_time,
                                total: start.elapsed(),
                            },
                        });
                    }
                    Err(err) => {
                        // Failed attempts are always recorded (regardless
                        // of trace level): they are the failure report.
                        attempts.push(SqlAttempt {
                            candidate: ci,
                            database: cand.schema.database.clone(),
                            repair,
                            prompt: prompt_text,
                            sql: Some(sql.clone()),
                            outcome: AttemptOutcome::ExecutionError(err.clone()),
                        });
                        exec_errors.push(err.clone());
                        if let Some(ident) = err.offending_identifier() {
                            pruned = pruned.without_identifier(ident);
                        }
                        feedback = Some((sql, err));
                    }
                }
            }
            // repairs exhausted on this candidate → walk to the next
        }

        Err(match exec_errors.last() {
            Some(last) => {
                let last = last.clone();
                AskError::Execution(ExecutionError { attempts, last })
            }
            None if resolved_any => {
                debug_assert!(!generated_any, "generated SQL must succeed or error");
                AskError::Generation(GenerationError { candidates: candidates.len() })
            }
            None => AskError::Prompt(PromptError { candidates: candidates.len() }),
        })
    }

    /// Ask a batch of questions, data-parallel over the persistent worker
    /// pool in `dbcopilot-runtime`. Outcomes are in question order and
    /// bit-for-bit identical at any `DBC_THREADS` value (each question is
    /// answered independently; no state is shared across items).
    pub fn ask_batch(
        &self,
        questions: &[String],
        opts: &AskOptions,
    ) -> Vec<Result<AskReport, AskError>> {
        dbcopilot_runtime::pooled_map(questions, |_, q| self.ask_with(q, opts))
    }

    /// Share this pipeline read-only across threads (the serving entry
    /// point for [`dbcopilot_serve::AskService`]).
    pub fn into_shared(self) -> std::sync::Arc<DbCopilot> {
        std::sync::Arc::new(self)
    }
}

/// Keep successful attempts out of the trace when tracing is off; failed
/// attempts are recorded unconditionally at the call sites that need them.
fn record(opts: &AskOptions, attempts: &mut Vec<SqlAttempt>, attempt: SqlAttempt) {
    if opts.trace != TraceLevel::Off {
        attempts.push(attempt);
    }
}

impl QueryPipeline for DbCopilot {
    fn ask_with(&self, question: &str, opts: &AskOptions) -> Result<AskReport, AskError> {
        DbCopilot::ask_with(self, question, opts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbcopilot_synth::{build_spider_like, CorpusSizes};

    #[test]
    fn pipeline_end_to_end() {
        let corpus =
            build_spider_like(&CorpusSizes { num_databases: 8, train_n: 200, test_n: 20 }, 11);
        let mut cfg = PipelineConfig::default();
        cfg.router.epochs = 5;
        cfg.synth_pairs = 800;
        let copilot = DbCopilot::fit(&corpus, cfg);
        // ask every test question; at least some should execute end to end
        let mut executed = 0;
        for inst in corpus.test.iter().take(10) {
            if let Ok(ans) = copilot.ask(&inst.question) {
                assert!(!ans.sql.is_empty());
                executed += 1;
            }
        }
        assert!(executed > 0, "pipeline should answer at least one question");
    }
}
