//! # DBCopilot — natural language querying over massive databases
//!
//! A complete Rust reproduction of *DBCopilot: Natural Language Querying
//! over Massive Databases via Schema Routing* (EDBT 2025). The crate
//! re-exports the full workspace and provides [`DbCopilot`], the end-to-end
//! pipeline of the paper's Figure 1:
//!
//! 1. **Schema routing** — a compact generative-retrieval model
//!    ([`dbcopilot_core::DbcRouter`]) navigates a question to its target
//!    database and tables under graph-constrained diverse beam search;
//! 2. **SQL generation** — an LLM (here the offline
//!    [`dbcopilot_nl2sql::CopilotLM`]) receives the routed schema in a
//!    schema-aware prompt and emits SQL, which executes on the in-memory
//!    engine ([`dbcopilot_sqlengine`]).
//!
//! ```no_run
//! use dbcopilot::{DbCopilot, PipelineConfig};
//! use dbcopilot_synth::{build_spider_like, CorpusSizes};
//!
//! let corpus = build_spider_like(&CorpusSizes { num_databases: 20, train_n: 500, test_n: 50 }, 7);
//! let copilot = DbCopilot::fit(&corpus, PipelineConfig::default());
//! let answer = copilot.ask("How many singers are there?");
//! println!("{answer:?}");
//! ```

pub use dbcopilot_core as core;
pub use dbcopilot_eval as eval;
pub use dbcopilot_graph as graph;
pub use dbcopilot_nl2sql as nl2sql;
pub use dbcopilot_nn as nn;
pub use dbcopilot_retrieval as retrieval;
pub use dbcopilot_runtime as runtime;
pub use dbcopilot_serve as serve;
pub use dbcopilot_sqlengine as sqlengine;
pub use dbcopilot_synth as synth;

use dbcopilot_core::{DbcRouter, RouterConfig, SerializationMode};
use dbcopilot_graph::{QuerySchema, SchemaGraph};
use dbcopilot_nl2sql::{basic_prompt, CopilotLM, LlmConfig, PromptSchema};
use dbcopilot_sqlengine::{execute, ResultSet};
use dbcopilot_synth::{questioner_pairs, Corpus, Questioner, QuestionerConfig};

/// End-to-end pipeline configuration.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    pub router: RouterConfig,
    pub llm: LlmConfig,
    /// Synthetic training pairs for the router.
    pub synth_pairs: usize,
    pub seed: u64,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            router: RouterConfig::default(),
            llm: LlmConfig::default(),
            synth_pairs: 4000,
            seed: 0xdbc,
        }
    }
}

/// The answer to a natural-language question.
#[derive(Debug, Clone)]
pub struct Answer {
    /// The schema the router navigated to.
    pub schema: QuerySchema,
    /// The generated SQL, if the model produced one.
    pub sql: Option<String>,
    /// Execution result of the SQL against the routed database.
    pub result: Option<ResultSet>,
}

/// The LLM-copilot collaboration pipeline (paper Figure 1).
pub struct DbCopilot {
    pub router: DbcRouter,
    pub llm: CopilotLM,
    corpus_collection: dbcopilot_sqlengine::Collection,
    corpus_store: dbcopilot_sqlengine::Store,
}

impl DbCopilot {
    /// Train the full pipeline over a corpus: schema graph construction,
    /// questioner training, training-data synthesis, and router fitting.
    pub fn fit(corpus: &Corpus, cfg: PipelineConfig) -> Self {
        let mut graph = SchemaGraph::build(&corpus.collection);
        dbcopilot_graph::augment_graph_with_joinable(
            &mut graph,
            &corpus.store,
            dbcopilot_graph::joinable::DEFAULT_JACCARD_THRESHOLD,
        );
        let pairs = questioner_pairs(corpus);
        let questioner = Questioner::train(&pairs, &QuestionerConfig::default());
        let examples = dbcopilot_core::synthesize_training_data(
            &graph,
            &corpus.meta,
            &questioner,
            cfg.synth_pairs,
            cfg.seed,
        );
        let (router, _) = DbcRouter::fit(graph, &examples, cfg.router, SerializationMode::Dfs);
        DbCopilot {
            router,
            llm: CopilotLM::new(cfg.llm),
            corpus_collection: corpus.collection.clone(),
            corpus_store: corpus.store.clone(),
        }
    }

    /// Assemble a pipeline from an already-trained router (e.g. one loaded
    /// via [`dbcopilot_core::load_router`], or a shared test fixture) and
    /// the corpus it should answer over.
    pub fn from_parts(
        router: DbcRouter,
        llm_cfg: LlmConfig,
        collection: dbcopilot_sqlengine::Collection,
        store: dbcopilot_sqlengine::Store,
    ) -> Self {
        DbCopilot {
            router,
            llm: CopilotLM::new(llm_cfg),
            corpus_collection: collection,
            corpus_store: store,
        }
    }

    /// Route a question to its best schema.
    pub fn route(&self, question: &str) -> Option<QuerySchema> {
        self.router.best_schema(question)
    }

    /// Full pipeline: route, prompt, generate SQL, execute.
    pub fn ask(&self, question: &str) -> Option<Answer> {
        let schema = self.route(question)?;
        let prompt_schema = PromptSchema::resolve(&self.corpus_collection, &schema);
        let prompt = basic_prompt(&prompt_schema, question);
        let out = self.llm.generate_sql(&prompt, question);
        let result = out.sql.as_ref().and_then(|sql| {
            self.corpus_store.database(&schema.database).and_then(|db| execute(db, sql).ok())
        });
        Some(Answer { schema, sql: out.sql, result })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbcopilot_synth::{build_spider_like, CorpusSizes};

    #[test]
    fn pipeline_end_to_end() {
        let corpus =
            build_spider_like(&CorpusSizes { num_databases: 8, train_n: 200, test_n: 20 }, 11);
        let mut cfg = PipelineConfig::default();
        cfg.router.epochs = 5;
        cfg.synth_pairs = 800;
        let copilot = DbCopilot::fit(&corpus, cfg);
        // ask every test question; at least some should execute end to end
        let mut executed = 0;
        for inst in corpus.test.iter().take(10) {
            if let Some(ans) = copilot.ask(&inst.question) {
                if ans.result.is_some() {
                    executed += 1;
                }
            }
        }
        assert!(executed > 0, "pipeline should answer at least one question");
    }
}
